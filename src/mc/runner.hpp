// Deterministic Monte-Carlo runner.
//
// Each trial receives its own Rng derived from (seed, trial index) alone, so
// results are bit-identical regardless of thread count or scheduling — the
// property that makes the EXPERIMENTS.md numbers reproducible.
#pragma once

#include <chrono>
#include <cstddef>
#include <functional>
#include <thread>
#include <vector>

#include "obs/registry.hpp"
#include "util/rng.hpp"

namespace oxmlc::mc {

namespace detail {

// Telemetry shared by every run_trials instantiation. Recording is wait-free
// and touches no trial state, so the determinism contract (results depend on
// (seed, index) only) is unaffected.
struct RunnerMetrics {
  obs::Counter& runs = obs::registry().counter("mc.runs");
  obs::Counter& trials = obs::registry().counter("mc.trials");
  obs::Gauge& threads = obs::registry().gauge("mc.threads");
  obs::Gauge& throughput = obs::registry().gauge("mc.trials_per_second");
  obs::Timer& trial_time = obs::registry().timer("mc.trial_time");
  obs::Timer& run_time = obs::registry().timer("mc.run_time");

  static RunnerMetrics& get() {
    static RunnerMetrics metrics;
    return metrics;
  }
};

}  // namespace detail

struct McOptions {
  std::size_t trials = 500;  // the paper's MC depth (500 runs per level)
  std::uint64_t seed = 0xA21Cull;
  std::size_t threads = 0;  // 0 = hardware_concurrency
};

// Derives the deterministic Rng of one trial.
Rng trial_rng(std::uint64_t seed, std::size_t trial);

// Runs `trial(index, rng)` for every trial and collects the returned samples
// in trial order. The trial function must be thread-compatible (no shared
// mutable state); each invocation gets a private Rng.
template <typename Sample>
std::vector<Sample> run_trials(const McOptions& options,
                               const std::function<Sample(std::size_t, Rng&)>& trial) {
  std::vector<Sample> samples(options.trials);
  std::size_t threads = options.threads ? options.threads
                                        : std::max(1u, std::thread::hardware_concurrency());
  threads = std::min<std::size_t>(threads, options.trials ? options.trials : 1);

  detail::RunnerMetrics& metrics = detail::RunnerMetrics::get();
  metrics.runs.add();
  metrics.trials.add(options.trials);
  metrics.threads.set(static_cast<double>(threads));
  const auto run_start = std::chrono::steady_clock::now();
  obs::ScopedTimer run_timer(metrics.run_time);

  const auto timed_trial = [&](std::size_t i, Rng& rng) {
    obs::ScopedTimer trial_timer(metrics.trial_time);
    return trial(i, rng);
  };

  if (threads <= 1) {
    for (std::size_t i = 0; i < options.trials; ++i) {
      Rng rng = trial_rng(options.seed, i);
      samples[i] = timed_trial(i, rng);
    }
  } else {
    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (std::size_t t = 0; t < threads; ++t) {
      pool.emplace_back([&, t] {
        for (std::size_t i = t; i < options.trials; i += threads) {
          Rng rng = trial_rng(options.seed, i);
          samples[i] = timed_trial(i, rng);
        }
      });
    }
    for (auto& worker : pool) worker.join();
  }

  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - run_start)
          .count();
  if (elapsed > 0.0 && options.trials > 0) {
    metrics.throughput.set(static_cast<double>(options.trials) / elapsed);
  }
  return samples;
}

}  // namespace oxmlc::mc
