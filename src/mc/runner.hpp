// Deterministic Monte-Carlo runner.
//
// Each trial receives its own Rng derived from (seed, trial index) alone, so
// results are bit-identical regardless of thread count or scheduling — the
// property that makes the EXPERIMENTS.md numbers reproducible.
#pragma once

#include <cstddef>
#include <functional>
#include <thread>
#include <vector>

#include "util/rng.hpp"

namespace oxmlc::mc {

struct McOptions {
  std::size_t trials = 500;  // the paper's MC depth (500 runs per level)
  std::uint64_t seed = 0xA21Cull;
  std::size_t threads = 0;  // 0 = hardware_concurrency
};

// Derives the deterministic Rng of one trial.
Rng trial_rng(std::uint64_t seed, std::size_t trial);

// Runs `trial(index, rng)` for every trial and collects the returned samples
// in trial order. The trial function must be thread-compatible (no shared
// mutable state); each invocation gets a private Rng.
template <typename Sample>
std::vector<Sample> run_trials(const McOptions& options,
                               const std::function<Sample(std::size_t, Rng&)>& trial) {
  std::vector<Sample> samples(options.trials);
  std::size_t threads = options.threads ? options.threads
                                        : std::max(1u, std::thread::hardware_concurrency());
  threads = std::min<std::size_t>(threads, options.trials ? options.trials : 1);

  if (threads <= 1) {
    for (std::size_t i = 0; i < options.trials; ++i) {
      Rng rng = trial_rng(options.seed, i);
      samples[i] = trial(i, rng);
    }
    return samples;
  }

  std::vector<std::thread> pool;
  pool.reserve(threads);
  for (std::size_t t = 0; t < threads; ++t) {
    pool.emplace_back([&, t] {
      for (std::size_t i = t; i < options.trials; i += threads) {
        Rng rng = trial_rng(options.seed, i);
        samples[i] = trial(i, rng);
      }
    });
  }
  for (auto& worker : pool) worker.join();
  return samples;
}

}  // namespace oxmlc::mc
