// SIMD engine of CellBatch: four lanes advance in lockstep through a
// v_cell-primal masked-Newton stack solve and pack gap integration.
//
// Why v_cell-primal: the scalar solvers iterate on the stack current I and
// pay an *inner* Newton inversion (voltage_for_current) for every residual
// evaluation. Rooting the equivalent residual
//
//   G(x) = Ids_access(Vgs(x), Vds(x)) - I_cell(x),   x = cell voltage
//
// evaluates the cell conduction law *directly* (one exp for the tunneling
// prefactor per solve, one exp per iteration for sinh/cosh), eliminating the
// inner inversion entirely. G is strictly decreasing (G' <= -g_cell < 0), so
// the same safeguarded-bisection bracket logic applies, and the acceptance
// bound |G(x)| <= max(relTol * I, absTol) implies the same current-space
// error bound the scalar solver guarantees (|I - root| <= |G|, since
// |dG/dI| >= 1 along the curve). The batch equivalence suite pins the
// engines against each other at 1e-9.
//
// Determinism contract: every pack update in this file is element-wise and
// masked per lane — a lane's arithmetic sequence depends only on its own
// state, never on which lanes share its pack or how many loop rounds its
// neighbours need. Results are therefore bitwise independent of pack
// grouping, and hence of lane sharding across threads. Lanes the vector
// solver cannot own (cold start, no conduction, voltage cap, non-convergence)
// fall back to the scalar solve_stack_warm for that step, which owns those
// edges by construction.
//
// This translation unit is compiled with -ffp-contract=off (see
// src/oxram/CMakeLists.txt): the portable pack lowers through plain C++
// arithmetic while the AVX2 pack uses explicit intrinsics, and letting the
// compiler fuse a*b+c into FMA on one side but not the other would break the
// bitwise PackScalar == PackAvx guarantee the dispatch safety tests pin.
#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include "numeric/simd.hpp"
#include "obs/registry.hpp"
#include "oxram/batch_kernel.hpp"
#include "oxram/model.hpp"
#include "oxram/stack_solver.hpp"
#include "util/units.hpp"

namespace oxmlc::oxram {
namespace {

struct SimdMetrics {
  obs::Counter& lanes_retired = obs::registry().counter("batch.lanes_retired");
  obs::Gauge& lanes_active = obs::registry().gauge("batch.lanes_active");
  obs::Counter& fallback_solves = obs::registry().counter("batch.simd_fallback_solves");

  static SimdMetrics& get() {
    static SimdMetrics metrics;
    return metrics;
  }
};

// Per-pack gathered cell parameters (one Vec per OxramParams field the
// kernels touch; axi/bxi are the premultiplied barrier-lowering products).
template <typename P>
struct PackCell {
  using V = typename P::Vec;
  V i0, g0, v0, r_leak, g_min, g_max, g_ref, k0, ea_ox, ea_red, dea_form, axi, bxi,
      t_ambient, r_th, t_max_rise, g_upper_virgin, rate_factor;
};

// Per-pack gathered stack parameters and topology masks.
template <typename P>
struct PackStack {
  using V = typename P::Vec;
  V r_series, v_wl, acc_vt0, acc_beta, acc_lambda, mir_vt0, mir_beta;
  typename P::Mask reset, mirror;
};

// gap_rate() on a pack: same statement sequence as the scalar model with
// sinh folded into the one exp the clamp already bounds. Four exps serve
// four lanes where the scalar path spends ~4 libm calls per lane.
template <typename P>
typename P::Vec gap_rate_pack(const PackCell<P>& c, typename P::Vec v,
                              typename P::Vec g, typename P::Mask virgin) {
  using V = typename P::Vec;
  const V zero = V::broadcast(0.0);
  const V half = V::broadcast(0.5);
  const V one = V::broadcast(1.0);

  // cell_current(v, g); sinh(clamp(v/v0)) via e - 1/e.
  const V arg = P::min(P::max(v / c.v0, V::broadcast(-60.0)), V::broadcast(60.0));
  const V e = num::simd::exp<P>(arg);
  const V sh = (e - one / e) * half;
  const V i = c.i0 * num::simd::exp<P>(zero - g / c.g0) * sh + v / c.r_leak;

  // local_temperature + kT in eV.
  const V t_loc = c.t_ambient + P::min(c.r_th * P::abs(v * i), c.t_max_rise);
  const V kt =
      V::broadcast(phys::kBoltzmann) * t_loc / V::broadcast(phys::kElementaryCharge);

  // Oxidation: RESET polarity drives it, self-limited through the field term.
  const V field = P::min(V::broadcast(2.0),
                         P::sqrt(c.g_ref / P::max(g, V::broadcast(0.25) * c.g_ref)));
  const V v_reset = P::max(zero, zero - v);
  const V ox_exponent = P::min(zero, (zero - (c.ea_ox - c.axi * v_reset * field)) / kt);
  const V ox = c.k0 * (one - g / c.g_max) * num::simd::exp<P>(ox_exponent);

  // Reduction: SET polarity; virgin lanes carry the forming barrier.
  const V ea_red = c.ea_red + P::select(virgin, c.dea_form, zero);
  const V v_set = P::max(zero, v);
  const V red_exponent = P::min(zero, (zero - (ea_red - c.bxi * v_set)) / kt);
  const V red = c.k0 * (g / c.g_max) * num::simd::exp<P>(red_exponent);

  return c.rate_factor * (ox - red);
}

// advance_gap() on a pack: masked RK2 sub-stepping. Finished lanes freeze
// (their gap/remaining stop updating), so each lane executes exactly the
// scalar loop's arithmetic regardless of its pack neighbours.
template <typename P>
typename P::Vec advance_gap_pack(const PackCell<P>& c, typename P::Vec v,
                                 typename P::Vec g, typename P::Mask virgin,
                                 typename P::Vec dt) {
  using V = typename P::Vec;
  using M = typename P::Mask;
  const V zero = V::broadcast(0.0);
  const V half = V::broadcast(0.5);
  const V g_upper = P::select(virgin, c.g_upper_virgin, c.g_max);
  const V g_lower = c.g_min;
  const V max_move = V::broadcast(0.05) * c.g0;

  V gap = g;
  V remaining = dt;
  M active = P::gt(remaining, zero);
  for (int guard = 0; guard < 100000 && active.any(); ++guard) {
    const V rate = gap_rate_pack<P>(c, v, gap, virgin);
    // rate == 0 lanes stop before stepping (mirrors the scalar break).
    active = active & !(P::le(rate, zero) & P::ge(rate, zero));
    const V h = P::min(remaining, max_move / P::abs(rate));
    const V g_half = P::min(P::max(gap + half * h * rate, g_lower), g_upper);
    const V rate_half = gap_rate_pack<P>(c, v, g_half, virgin);
    const V g_next = P::min(P::max(gap + h * rate_half, g_lower), g_upper);
    const V rem_next = remaining - h;
    gap = P::select(active, g_next, gap);
    remaining = P::select(active, rem_next, remaining);
    const M pinned = (P::le(gap, g_lower) & P::lt(rate_half, zero)) |
                     (P::ge(gap, g_upper) & P::gt(rate_half, zero));
    active = active & !pinned & P::gt(remaining, zero);
  }
  return gap;
}

}  // namespace

void CellBatch::prepare_scratch() {
  const std::size_t n = size();
  VecScratch& s = scratch_;
  for (std::vector<double>* field :
       {&s.i0, &s.g0, &s.v0, &s.r_leak, &s.g_min, &s.g_max, &s.g_ref, &s.k0, &s.ea_ox,
        &s.ea_red, &s.dea_form, &s.axi, &s.bxi, &s.t_ambient, &s.r_th, &s.t_max_rise,
        &s.g_upper_virgin, &s.r_series, &s.v_wl, &s.acc_vt0, &s.acc_beta,
        &s.acc_lambda, &s.mir_vt0, &s.mir_beta, &s.is_reset, &s.is_mirror, &s.sign}) {
    field->resize(n);
  }
  for (std::size_t l = 0; l < n; ++l) {
    const OxramParams& p = params_[l];
    const StackConfig& st = stacks_[l];
    const LaneControl& c = control_[l];
    s.i0[l] = p.i0;
    s.g0[l] = p.g0;
    s.v0[l] = p.v0;
    s.r_leak[l] = p.r_leak;
    s.g_min[l] = p.g_min;
    s.g_max[l] = p.g_max;
    s.g_ref[l] = p.g_ref;
    s.k0[l] = p.k0;
    s.ea_ox[l] = p.ea_ox;
    s.ea_red[l] = p.ea_red;
    s.dea_form[l] = p.dea_form;
    s.axi[l] = p.alpha * p.xi;
    s.bxi[l] = (1.0 - p.alpha) * p.xi;
    s.t_ambient[l] = p.t_ambient;
    s.r_th[l] = p.r_th;
    s.t_max_rise[l] = p.t_max_rise;
    s.g_upper_virgin[l] = std::max(p.g_virgin, p.g_max);
    s.r_series[l] = st.r_series;
    s.v_wl[l] = c.v_wl;
    s.acc_vt0[l] = st.access.vt0;
    s.acc_beta[l] = st.access.beta();
    s.acc_lambda[l] = st.access.lambda;
    s.mir_vt0[l] = st.mirror.vt0;
    s.mir_beta[l] = st.mirror.beta();
    const bool reset = c.polarity == Polarity::kReset;
    s.is_reset[l] = reset ? 1.0 : 0.0;
    s.is_mirror[l] = (st.bl_through_mirror && reset) ? 1.0 : 0.0;
    s.sign[l] = reset ? -1.0 : 1.0;
  }
}

template <typename P>
void CellBatch::step_pack(const std::size_t* lanes, std::size_t count) {
  using V = typename P::Vec;
  using M = typename P::Mask;
  constexpr int W = num::simd::kPackWidth;

  // Tail packs replicate the last real lane: pack arithmetic is element-wise
  // so padding cannot perturb real lanes, and the scalar side effects below
  // loop over the real count only.
  std::size_t idx[W];
  for (int k = 0; k < W; ++k) {
    idx[k] = lanes[std::min<std::size_t>(static_cast<std::size_t>(k), count - 1)];
  }

  auto gather = [&](const std::vector<double>& a) {
    double buf[W];
    for (int k = 0; k < W; ++k) buf[k] = a[idx[k]];
    return V::load(buf);
  };
  auto mask_of = [&](const std::vector<double>& a) {
    return P::gt(gather(a), V::broadcast(0.5));
  };

  PackCell<P> cell;
  cell.i0 = gather(scratch_.i0);
  cell.g0 = gather(scratch_.g0);
  cell.v0 = gather(scratch_.v0);
  cell.r_leak = gather(scratch_.r_leak);
  cell.g_min = gather(scratch_.g_min);
  cell.g_max = gather(scratch_.g_max);
  cell.g_ref = gather(scratch_.g_ref);
  cell.k0 = gather(scratch_.k0);
  cell.ea_ox = gather(scratch_.ea_ox);
  cell.ea_red = gather(scratch_.ea_red);
  cell.dea_form = gather(scratch_.dea_form);
  cell.axi = gather(scratch_.axi);
  cell.bxi = gather(scratch_.bxi);
  cell.t_ambient = gather(scratch_.t_ambient);
  cell.r_th = gather(scratch_.r_th);
  cell.t_max_rise = gather(scratch_.t_max_rise);
  cell.g_upper_virgin = gather(scratch_.g_upper_virgin);
  cell.rate_factor = gather(rate_factor_);

  PackStack<P> stack;
  stack.r_series = gather(scratch_.r_series);
  stack.v_wl = gather(scratch_.v_wl);
  stack.acc_vt0 = gather(scratch_.acc_vt0);
  stack.acc_beta = gather(scratch_.acc_beta);
  stack.acc_lambda = gather(scratch_.acc_lambda);
  stack.mir_vt0 = gather(scratch_.mir_vt0);
  stack.mir_beta = gather(scratch_.mir_beta);
  stack.reset = mask_of(scratch_.is_reset);
  stack.mirror = mask_of(scratch_.is_mirror);

  // Per-lane drive value and vector-solver eligibility. A lane without a
  // usable warm voltage (cold start, zero-op last step, voltage cap) or
  // without positive drive goes to the scalar solver for this step.
  double vd_buf[W];
  double fb_buf[W];
  for (int k = 0; k < W; ++k) {
    const std::size_t lane = idx[k];
    vd_buf[k] = drive_value(control_[lane], control_[lane].t);
    const bool fb = vd_buf[k] <= 0.0 || warm_v_[lane] <= 0.0 ||
                    warm_v_[lane] >= detail::kStackVcellCap;
    fb_buf[k] = fb ? 1.0 : 0.0;
  }
  const V v_drive = V::load(vd_buf);

  const V zero = V::broadcast(0.0);
  const V half = V::broadcast(0.5);
  const V one = V::broadcast(1.0);
  const V two = V::broadcast(2.0);

  // ---- masked safeguarded Newton on G(x) = Ids(x) - I_cell(x) ----
  const V g = gather(gap_);
  const V a = cell.i0 * num::simd::exp<P>(zero - g / cell.g0);
  const V inv_rl = one / cell.r_leak;
  const V rel = V::broadcast(kStackSolveRelTol);
  const V abst = V::broadcast(kStackSolveAbsTol);
  // Below ~nV the root region carries sub-pA currents: treat as "stack cannot
  // conduct" and let the scalar solver make the zero-op call.
  const V tiny_v = V::broadcast(1e-9);

  V x = gather(warm_v_);
  V lo = zero;
  V hi = V::broadcast(detail::kStackVcellCap);
  M fallback = P::gt(V::load(fb_buf), half);
  M done = fallback;
  V x_out = zero;
  V i_out = zero;

  for (int iter = 0; iter < 32 && !done.all(); ++iter) {
    const V arg = P::min(P::max(x / cell.v0, V::broadcast(-60.0)), V::broadcast(60.0));
    const V e = num::simd::exp<P>(arg);
    const V ie = one / e;
    const V sh = (e - ie) * half;
    const V ch = (e + ie) * half;
    const V i = a * sh + x / cell.r_leak;
    const V gcell = a * ch / cell.v0 + inv_rl;

    // Diode-connected mirror drop and its x-derivative (mirror lanes only);
    // beta * sqrt(2i/beta) == sqrt(2*i*beta).
    const V sq = P::sqrt(two * i / stack.mir_beta);
    const V vsink = P::select(stack.mirror, stack.mir_vt0 + sq, zero);
    const V dsink = P::select(stack.mirror, gcell / (stack.mir_beta * sq), zero);

    const V ir = i * stack.r_series;
    // RESET topology: SL (drive) - access - BE - cell - TE/BL - [mirror] - gnd.
    const V nbe_r = vsink + x;
    const V vgs_r = stack.v_wl - nbe_r;
    const V vds_r = (v_drive - ir) - nbe_r;
    const V dn_r = one + dsink;
    const V dvgs_r = zero - dn_r;
    const V dvds_r = (zero - stack.r_series * gcell) - dn_r;
    // SET topology: BL (drive) - TE - cell - BE - access - SL/gnd.
    const V vds_s = (v_drive - ir) - x;
    const V dvds_s = (zero - stack.r_series * gcell) - one;

    const V vgs = P::select(stack.reset, vgs_r, stack.v_wl);
    const V vds = P::select(stack.reset, vds_r, vds_s);
    const V dvgs = P::select(stack.reset, dvgs_r, zero);
    const V dvds = P::select(stack.reset, dvds_r, dvds_s);

    // Access device, level-1 at vbs = 0 (vth == vt0 exactly).
    const V vov = vgs - stack.acc_vt0;
    const V clm = one + stack.acc_lambda * vds;
    const V q = vov * vds - half * vds * vds;
    const V hvv = half * vov * vov;
    const M tri = P::lt(vds, vov);
    V ids = P::select(tri, stack.acc_beta * q * clm, stack.acc_beta * hvv * clm);
    V gm = P::select(tri, stack.acc_beta * vds * clm, stack.acc_beta * vov * clm);
    V gds = P::select(tri,
                      stack.acc_beta * (vov - vds) * clm +
                          stack.acc_beta * q * stack.acc_lambda,
                      stack.acc_beta * hvv * stack.acc_lambda);
    const M off = P::le(vov, zero) | P::le(vds, zero);
    ids = P::select(off, zero, ids);
    gm = P::select(off, zero, gm);
    gds = P::select(off, zero, gds);

    const V resid = ids - i;
    const V slope = gm * dvgs + gds * dvds - gcell;  // strictly negative

    const M conv = P::le(P::abs(resid), P::max(rel * i, abst));
    const M newly = conv & !done;
    x_out = P::select(newly, x, x_out);
    i_out = P::select(newly, i, i_out);
    done = done | conv;

    const M live = !done;
    lo = P::select(P::gt(resid, zero) & live, x, lo);
    hi = P::select(P::le(resid, zero) & live, x, hi);
    // Bracket collapsing onto zero volts: no conduction — scalar owns it.
    const M nocond = live & P::lt(hi, tiny_v);
    fallback = fallback | nocond;
    done = done | nocond;

    V xn = x - resid / slope;
    const M ok = P::gt(xn, lo) & P::lt(xn, hi);
    xn = P::select(ok, xn, half * (lo + hi));
    x = P::select(done, x, xn);
  }
  fallback = fallback | !done;
  const V fb_flag = P::select(fallback, one, zero);

  // ---- scalar per-lane completion: fallback solves, warm state, energy,
  // termination, step policy ----
  double cur[W], vsg[W], virg[W];
  std::uint64_t fallbacks = 0;
  for (std::size_t k = 0; k < count; ++k) {
    const std::size_t lane = idx[k];
    LaneControl& c = control_[lane];
    double current, v_cell;
    if (fb_flag.lane(static_cast<int>(k)) > 0.5) {
      const StackOperatingPoint sp =
          solve_stack_warm(params_[lane], gap_[lane], stacks_[lane], c.polarity,
                           vd_buf[k], c.v_wl, warm_i_[lane]);
      current = sp.current;
      v_cell = sp.v_cell;
      ++fallbacks;
    } else {
      current = i_out.lane(static_cast<int>(k));
      v_cell = x_out.lane(static_cast<int>(k));
    }
    warm_i_[lane] = current;
    warm_v_[lane] = current > 0.0 ? v_cell : 0.0;
    cur[k] = current;
    vsg[k] = scratch_.sign[lane] * v_cell;
    virg[k] = c.virgin ? 1.0 : 0.0;
    update_sample(lane, vd_buf[k], current, v_cell);
  }
  for (std::size_t k = count; k < W; ++k) {
    cur[k] = cur[count - 1];
    vsg[k] = vsg[count - 1];
    virg[k] = virg[count - 1];
  }
  if (fallbacks > 0) SimdMetrics::get().fallback_solves.add(fallbacks);

  // ---- step-size policy: one pack rate evaluation, scalar bound logic ----
  const V v_signed = V::load(vsg);
  const M virgin_m = P::gt(V::load(virg), half);
  const V rate = gap_rate_pack<P>(cell, v_signed, g, virgin_m);
  double dt_buf[W];
  for (std::size_t k = 0; k < count; ++k) {
    const std::size_t lane = idx[k];
    const LaneControl& c = control_[lane];
    const StepPolicy policy = step_policy(c, results_[lane], cur[k]);
    const double dt_rec = recommended_dt_given_rate(
        params_[lane], gap_[lane], c.virgin, rate.lane(static_cast<int>(k)),
        policy.gap_fraction);
    dt_buf[k] = apply_corners(c, std::min(policy.dt_cap, dt_rec));
  }
  for (std::size_t k = count; k < W; ++k) dt_buf[k] = dt_buf[count - 1];

  // ---- gap integration and time advance ----
  const V g_new = advance_gap_pack<P>(cell, v_signed, g, virgin_m, V::load(dt_buf));
  for (std::size_t k = 0; k < count; ++k) {
    const std::size_t lane = idx[k];
    LaneControl& c = control_[lane];
    gap_[lane] = g_new.lane(static_cast<int>(k));
    if (c.virgin && gap_[lane] < params_[lane].g_max * 0.98) c.virgin = false;
    c.t += dt_buf[k];
  }
}

template <typename P>
std::uint64_t CellBatch::run_span_vector(std::size_t begin, std::size_t end) {
  SimdMetrics& metrics = SimdMetrics::get();

  // Same active-lane compaction as the scalar run_span, with the surviving
  // lanes of each round advanced four at a time.
  std::vector<std::size_t> active(end - begin);
  std::iota(active.begin(), active.end(), begin);
  std::vector<std::size_t> stepping;
  stepping.reserve(active.size());
  std::uint64_t steps = 0;
  std::uint64_t retired = 0;
  while (!active.empty()) {
    stepping.clear();
    for (const std::size_t lane : active) {
      if (control_[lane].t < control_[lane].t_end - 1e-15) {
        stepping.push_back(lane);
      } else {
        finalize_lane(lane);
        ++retired;
      }
    }
    for (std::size_t p = 0; p < stepping.size(); p += num::simd::kPackWidth) {
      const std::size_t m =
          std::min<std::size_t>(num::simd::kPackWidth, stepping.size() - p);
      step_pack<P>(stepping.data() + p, m);
      steps += m;
    }
    metrics.lanes_active.set(static_cast<double>(stepping.size()));
    active.swap(stepping);
  }
  metrics.lanes_retired.add(retired);
  return steps;
}

std::uint64_t CellBatch::run_span_simd(std::size_t begin, std::size_t end,
                                       num::simd::Backend engine) {
#if OXMLC_SIMD_HAS_AVX2
  if (engine == num::simd::Backend::kAvx2) {
    return run_span_vector<num::simd::PackAvx>(begin, end);
  }
#else
  static_cast<void>(engine);
#endif
  // kScalar — and kAvx2 in a binary without the AVX2 instantiation, which is
  // indistinguishable anyway: the two packs are bitwise identical.
  return run_span_vector<num::simd::PackScalar>(begin, end);
}

}  // namespace oxmlc::oxram
