// OxRAM compact-model parameters and their statistical variation.
//
// Model lineage. The paper simulates TiN/Ti/HfO2/TiN 1T-1R cells with the
// Bocquet–Aziza electrochemical compact model [21,22], calibrated on an 8x8
// 130 nm test chip, with +/-5 % standard deviation on the transfer coefficient
// alpha and the oxide thickness Lx. We implement the same electrochemical
// structure — Butler–Volmer oxidation/reduction rates in the cell voltage,
// Arrhenius temperature activation, local Joule heating — applied to a
// *gap-length* state variable `g` with exponential (trap-assisted-tunneling)
// conduction, the standard formulation for filamentary HfO2 devices. The gap
// form is chosen because the paper's own evaluation depends on HRS depth over
// four decades (38 kOhm ... 382 MOhm), which a radius-only conduction law
// cannot span; the calibration targets are the paper's measured anchors
// (Table 2, Figs. 8/10). See DESIGN.md "substitutions".
//
// State:  g in [g_min, g_max]   (gap length, metres; g ~ 0 = LRS)
// Conduction:
//   I(V, g) = i0 * exp(-g / g0) * sinh(V / v0) + V / r_leak
// Dynamics (dg/dt). The RESET driving force is field-limited: the barrier
// lowering scales with the field across the gap region, so dissolution is fast
// while the gap is short and self-limits as it deepens — this is what makes
// RESET a negative-feedback process (paper §3.2) and what stretches the
// termination latency at low reference currents (Fig. 13b). SET (reduction)
// is tip-generation dominated and sees the full cell voltage, which restores
// the LRS in ~100 ns even from a saturated HRS.
//
//   field(g)  = sqrt(g_ref / max(g, g_ref/4))            (clamped at 2)
//   oxidation (gap growth, RESET, V < 0):
//     +k0 * (1 - g/g_max) * exp(-(ea_ox - alpha * xi * |V| * field(g)) / kT_loc)
//   reduction (gap shrink, SET, V > 0):
//     -k0 * (g/g_max) * exp(-(ea_red + dEa_form[virgin] - (1-alpha) * xi * V) / kT_loc)
//   kT_loc includes Joule self-heating: T_loc = T_amb + r_th * |V * I|.
//   (exponents are clamped at 0, i.e. rates saturate at the attempt velocity)
//
// Sign convention: V = V(TE) - V(BE), TE wired to the bit line. V > 0 is the
// SET polarity (Table 1: BL = 1.2 V), V < 0 is RESET (SL = 1.2 V).
#pragma once

#include "util/rng.hpp"

namespace oxmlc::oxram {

struct OxramParams {
  // --- conduction ---
  double i0 = 80e-6;        // A; filament conduction prefactor
  double g0 = 0.25e-9;      // m; tunneling attenuation length
  double v0 = 0.40;         // V; sinh nonlinearity scale
  double r_leak = 5e9;      // Ohm; parallel leakage floor (numerics + deep HRS)

  // --- gap range ---
  double g_min = 0.25e-9;   // m; fully-SET residual gap
  double g_max = 2.90e-9;   // m; fully-RESET gap (saturated HRS)
  double g_virgin = 2.90e-9;  // m; as-fabricated gap (before FORMING)

  // --- dynamics ---
  double k0 = 1000.0;       // m/s; attempt velocity (phonon freq x hop dist)
  double ea_ox = 0.510;     // eV; oxidation (RESET) barrier
  double ea_red = 0.870;    // eV; reduction (SET) barrier
  double dea_form = 0.75;   // eV; extra barrier while the device is virgin
  double alpha = 0.25;      // transfer coefficient (0..1), paper's `alpha`
  double xi = 0.82;         // eV/V; electrochemical barrier-lowering efficiency
  double g_ref = 0.30e-9;   // m; field-reference gap for the RESET force
  double lx = 10e-9;        // m; HfO2 thickness, paper's `Lx` (scales v0)

  // --- thermal ---
  double t_ambient = 300.0; // K
  double r_th = 3e5;        // K/W; effective thermal resistance of the CF
  double t_max_rise = 400.0;  // K; cap on Joule heating (melting-point guard)

  // Nominal thickness used to translate Lx variation into field variation.
  static constexpr double kNominalLx = 10e-9;
};

// Device-to-device (D2D) and cycle-to-cycle (C2C) variability.
//
// The paper states +/-5 % sigma on alpha and Lx for D2D; C2C is modelled as a
// lognormal fluctuation of the switching rates per operation, which captures
// the stochastic (thermally-activated) nature of each switching event.
struct OxramVariability {
  double sigma_alpha_rel = 0.05;  // paper: 5 % on alpha
  double sigma_lx_rel = 0.05;     // paper: 5 % on Lx
  double sigma_rate_c2c = 0.10;   // lognormal sigma on k0 per operation
  bool enabled = true;

  static OxramVariability disabled() {
    OxramVariability v;
    v.enabled = false;
    v.sigma_alpha_rel = v.sigma_lx_rel = v.sigma_rate_c2c = 0.0;
    return v;
  }
};

// Samples a device instance: applies D2D variation to alpha and Lx. The Lx
// variation propagates into the field-dependent quantities (v0 and g0 scale
// with thickness; thicker oxide = weaker field = weaker nonlinearity).
OxramParams sample_device(const OxramParams& nominal, const OxramVariability& variability,
                          Rng& rng);

// Samples the per-operation C2C rate multiplier (1.0 when disabled).
double sample_cycle_rate_factor(const OxramVariability& variability, Rng& rng);

}  // namespace oxmlc::oxram
