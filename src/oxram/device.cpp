#include "oxram/device.hpp"

#include "util/error.hpp"

namespace oxmlc::oxram {

OxramDevice::OxramDevice(std::string name, int te, int be, const OxramParams& params,
                         double initial_gap, bool virgin)
    : Device(std::move(name)), params_(params), gap_(initial_gap), virgin_(virgin) {
  OXMLC_CHECK(initial_gap >= 0.0, "oxram " + name_ + ": gap must be non-negative");
  nodes_ = {te, be};
}

double OxramDevice::terminal_voltage(std::span<const double> x) const {
  auto volt = [&](int n) { return n < 0 ? 0.0 : x[static_cast<std::size_t>(n)]; };
  return volt(nodes_[0]) - volt(nodes_[1]);
}

void OxramDevice::stamp(const spice::StampContext& ctx, spice::Stamper& stamper) {
  const int te = nodes_[0], be = nodes_[1];
  const double vcell = v(ctx, te) - v(ctx, be);
  const double i = cell_current(params_, vcell, gap_);
  const double gd = cell_conductance(params_, vcell, gap_);

  stamper.residual(te, i);
  stamper.residual(be, -i);
  stamper.jacobian(te, te, gd);
  stamper.jacobian(te, be, -gd);
  stamper.jacobian(be, te, -gd);
  stamper.jacobian(be, be, gd);
}

void OxramDevice::commit_step(const spice::StampContext& ctx) {
  if (ctx.dt <= 0.0) return;
  const double vcell = terminal_voltage(ctx.x);
  const double new_gap = advance_gap(params_, vcell, gap_, virgin_, ctx.dt, rate_factor_);
  if (virgin_ && new_gap < params_.g_max * 0.98) {
    virgin_ = false;  // forming completed; barrier permanently removed
  }
  gap_ = new_gap;
}

double OxramDevice::recommend_dt(const spice::StampContext& ctx) const {
  const double vcell = terminal_voltage(ctx.x);
  return recommended_dt(params_, vcell, gap_, virgin_, rate_factor_);
}

double OxramDevice::current(std::span<const double> x) const {
  return cell_current(params_, terminal_voltage(x), gap_);
}

}  // namespace oxmlc::oxram
