// Fast (non-MNA) simulation of one 1T-1R cell inside its programming stack.
//
// The full-circuit SPICE path resolves every node of the write path; this
// path exploits the structure of that circuit instead: at programming time
// scales (>> RC of the lines) the stack is quasi-static, so the cell current
// is the root of a single monotone scalar equation
//
//   F(I) = Ids_access(Vgs(I), Vds(I)) - I = 0
//
// where the bit-line sink (the diode-connected input mirror of the RESET
// write-termination circuit, Fig. 7a) and the cell I(V, g) law are folded into
// the node voltages. The gap ODE is then advanced with the solved cell
// voltage. The two paths share the same device physics (oxram/model.hpp,
// devices/mosfet.hpp) and are cross-validated by an integration test and the
// behavioral-vs-transistor ablation bench.
//
// This is the engine behind the Monte-Carlo benches (Figs. 11-13, Table 3):
// one terminated RESET costs microseconds of CPU instead of seconds.
#pragma once

#include <optional>
#include <vector>

#include "devices/mosfet.hpp"
#include "oxram/model.hpp"

namespace oxmlc::oxram {

// Electrical environment of the cell during an operation.
struct StackConfig {
  // Access transistor (paper: W = 0.8 um, L = 0.5 um, Fig. 1b).
  dev::MosfetParams access = dev::tech130hv::nmos(0.8e-6, 0.5e-6);
  // Input mirror of the write-termination circuit (M1 of Fig. 7a); sized wide
  // so its Vgs stays near Vth across the 6-36 uA termination range.
  dev::MosfetParams mirror = dev::tech130hv::nmos(120e-6, 3e-6);
  double r_series = 870.0;      // driver output + SL + BL line resistance (lumped;
                                // must match the WritePathConfig ladder totals)
  bool bl_through_mirror = false;  // true: BL sinks into the mirror (terminated RST)
};

enum class Polarity { kSet, kReset };

struct StackOperatingPoint {
  double current = 0.0;   // stack current (A), magnitude
  double v_cell = 0.0;    // cell voltage magnitude
  double v_access = 0.0;  // access transistor Vds
  double v_sink = 0.0;    // BL sink (mirror) voltage
};

// Convergence contract shared by the scalar and warm-start stack solvers:
// both stop once the solved current is known to within
//   max(kStackSolveRelTol * I, kStackSolveAbsTol)
// of the true root. The relative tolerance is what the equivalence suite
// pins; the absolute floor equals the resolution the historical fixed
// 52-halving bisection reached from the full [0, 10 mA] bracket, so currents
// too small for the relative criterion converge exactly as before.
inline constexpr double kStackSolveRelTol = 1e-12;
inline constexpr double kStackSolveAbsTol = 10e-3 * 0x1p-52;
inline constexpr int kStackSolveMaxIter = 52;

// Solves the quasi-static stack for a cell with gap `g`.
// `v_drive`: driver voltage (SL for RESET, BL for SET); `v_wl`: word line.
StackOperatingPoint solve_stack(const OxramParams& cell, double g, const StackConfig& stack,
                                Polarity polarity, double v_drive, double v_wl);

// Warm-started variant used by the batch kernel: safeguarded Newton on the
// same residual, seeded with `i_warm` (typically the previous time step's
// current, which the gap ODE moves by <~10 % per step). Converges to the same
// root within the shared tolerances in a handful of evaluations instead of
// ~52 bisection halvings. `i_warm <= 0` means no warm information (the solver
// then starts from the bracket midpoint).
StackOperatingPoint solve_stack_warm(const OxramParams& cell, double g,
                                     const StackConfig& stack, Polarity polarity,
                                     double v_drive, double v_wl, double i_warm);

// Trapezoidal programming pulse.
struct PulseShape {
  double amplitude = 1.5;  // V
  double rise = 10e-9;     // s
  double width = 3.5e-6;   // s (plateau)
  double fall = 10e-9;     // s
};

struct TrajectoryPoint {
  double t = 0.0;
  double current = 0.0;
  double v_cell = 0.0;
  double gap = 0.0;
};

struct OperationResult {
  bool terminated = false;   // write termination fired (RESET only)
  double t_terminate = 0.0;  // crossing time (= RST latency reported in Fig. 13b)
  double t_end = 0.0;        // end of the operation (incl. commanded ramp-down)
  double final_gap = 0.0;
  double energy_source = 0.0;  // integral of V_drive * I  (what Fig. 13a reports)
  double energy_cell = 0.0;    // integral of V_cell * I
  std::vector<TrajectoryPoint> trajectory;  // recorded when requested
};

struct ResetOperation {
  PulseShape pulse{1.60, 10e-9, 3.5e-6, 10e-9};  // standard RST width 3.5 us
  double v_wl = 3.3;            // WL boosted during MLC RESET
  // Termination: stop when I falls to iref. nullopt = standard (fixed) pulse.
  std::optional<double> iref;
  double termination_delay = 2e-9;   // comparator + control-logic + driver delay
  bool record_trajectory = false;
  double dt_max = 20e-9;
};

struct SetOperation {
  PulseShape pulse{1.2, 5e-9, 100e-9, 5e-9};  // paper: SET pulse ~100 ns
  double v_wl = 2.0;                           // Table 1
  bool record_trajectory = false;
  double dt_max = 2e-9;
};

struct FormingOperation {
  PulseShape pulse{3.3, 50e-9, 1e-6, 50e-9};  // Table 1: FMG BL = 3.3 V
  double v_wl = 2.0;
  bool record_trajectory = false;
  double dt_max = 10e-9;
};

struct ReadResult {
  double current = 0.0;       // bit-line current the sense amp compares
  double r_cell = 0.0;        // exact cell resistance V_cell / I
  double r_apparent = 0.0;    // V_read / I (includes access-device drop)
};

// One 1T-1R cell with persistent state, programmable through its stack.
class FastCell {
 public:
  FastCell(const OxramParams& params, const StackConfig& stack, double initial_gap,
           bool virgin = false);

  // Convenience: a formed cell in the SET (LRS) state.
  static FastCell formed_lrs(const OxramParams& params, const StackConfig& stack);

  OperationResult apply_reset(const ResetOperation& op);
  OperationResult apply_set(const SetOperation& op);
  OperationResult apply_forming(const FormingOperation& op);

  // READ at `v_read` on the bit line with the read word-line bias.
  ReadResult read(double v_read = 0.3, double v_wl = 2.5) const;

  double gap() const { return gap_; }
  void set_gap(double gap) { gap_ = gap; }
  bool virgin() const { return virgin_; }
  void set_virgin(bool virgin) { virgin_ = virgin; }

  const OxramParams& params() const { return params_; }
  OxramParams& mutable_params() { return params_; }
  const StackConfig& stack() const { return stack_; }
  StackConfig& mutable_stack() { return stack_; }

  // Per-operation C2C rate multiplier (resampled by the caller per pulse).
  void set_rate_factor(double f) { rate_factor_ = f; }
  double rate_factor() const { return rate_factor_; }

 private:
  OperationResult run_pulse(const PulseShape& pulse, Polarity polarity, double v_wl,
                            bool through_mirror, std::optional<double> iref,
                            double termination_delay, bool record, double dt_max);

  OxramParams params_;
  StackConfig stack_;
  double gap_;
  bool virgin_;
  double rate_factor_ = 1.0;
};

}  // namespace oxmlc::oxram
