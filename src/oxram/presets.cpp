#include "oxram/presets.hpp"

namespace oxmlc::oxram {

OxramParams pcm_like_params() {
  OxramParams p;
  // Conduction: lower ON resistance (crystalline GST), steeper thickness
  // dependence, wider window.
  p.i0 = 150e-6;
  p.g0 = 0.40e-9;
  p.v0 = 0.30;
  p.r_leak = 20e9;
  p.g_min = 0.30e-9;   // fully crystallized residual amorphous sliver
  p.g_max = 4.0e-9;    // full amorphous cap
  p.g_virgin = 4.0e-9; // as-deposited amorphous (PCM "forming" = first SET)

  // Dynamics: amorphization (gap growth) is the controlled direction; slower
  // and less field-sensitive than HfO2 dissolution, so the termination has an
  // even easier negative-feedback plant to stop.
  p.k0 = 800.0;
  p.ea_ox = 0.530;
  p.ea_red = 0.820;
  p.dea_form = 0.0;  // no electroforming step in PCM
  p.alpha = 0.30;
  p.xi = 0.70;
  p.g_ref = 0.45e-9;

  // PCM switching is strongly thermally driven.
  p.r_th = 6e5;
  p.t_max_rise = 600.0;
  return p;
}

StackConfig pcm_like_stack() {
  StackConfig stack;
  // Higher programming currents: wider access device and stiffer lines.
  stack.access = dev::tech130hv::nmos(1.6e-6, 0.5e-6);
  stack.mirror = dev::tech130hv::nmos(160e-6, 3e-6);
  stack.r_series = 600.0;
  return stack;
}

ResetOperation pcm_like_reset() {
  ResetOperation op;
  op.pulse.amplitude = 1.9;  // melt-quench needs more drive
  op.pulse.width = 12e-6;
  op.v_wl = 3.3;
  return op;
}

SetOperation pcm_like_set() {
  SetOperation op;
  op.pulse.amplitude = 1.4;
  op.pulse.width = 300e-9;  // crystallization is slower than OxRAM SET
  op.v_wl = 2.5;
  return op;
}

}  // namespace oxmlc::oxram
