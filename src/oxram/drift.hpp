// Post-program state evolution of the OxRAM gap: retention/relaxation drift.
//
// The write-termination scheme freezes the gap the instant the comparator
// fires, but programmed HRS states are not stationary: the filament keeps
// rearranging after the pulse ends. Measured OxRAM behaviour (programmed-state
// stability studies, arXiv:1810.10528) is log-time conductance drift with two
// distinguishable components, both of which selectively close adjacent-level
// margins in an MLC allocation:
//
//   * fast post-program RELAXATION — a one-shot transient per program event:
//     unstable vacancy configurations left behind by the terminated RESET
//     settle within ~ms, partially re-closing the gap (resistance drops).
//     Its magnitude is stochastic per event (a C2C quantity), which is what a
//     relaxation-aware verify (arXiv:2301.08516) exploits: wait tau_relax,
//     re-sense, and re-terminate only the cells whose draw landed in the tail.
//   * slow RETENTION drift — thermally-activated filament regrowth over
//     device lifetime, log-time with a per-cell activation (a D2D quantity),
//     Arrhenius-accelerated by the bake/operating temperature.
//
// Both use the saturating log-time kernel
//
//   phi(t) = 1 - (1 + t/tau)^-nu        (0 at t = 0, -> 1 as t -> inf;
//                                        ~ nu * ln(1 + t/tau) while small)
//
// and act multiplicatively on the programmed depth above the LRS floor:
//
//   g(t) = g_min + (g_anchor - g_min) *
//          [1 - relax_amp * phi(t, tau_fast, nu_fast)
//             - drift_amp * phi(t * a_T, tau_slow, nu_slow)]    (clamped)
//
// so deeper states drift by more in absolute gap — and, since R ~ exp(g/g0),
// by much more in ohms — which is exactly the margin-closure asymmetry the
// stability studies report. Every trajectory is monotone in t, so a
// population's *open* inter-level window only ever shrinks and decode errors
// only ever accumulate (both test-pinned). The relaxation amplitude is a
// moderate-median, heavy-tailed lognormal: the bulk of program events stays
// well inside a QLC band (which is what lets a few verify passes converge)
// while the tail draws are the ones that cross bands and close the
// worst-case window — the selection effect the relaxation-aware verify
// exploits.
//
// The scalar drifted_gap() is the reference path; drifted_gap_batch() is the
// SoA kernel the reliability engine advances whole arrays with (same
// trajectories within 1e-9 relative, test-pinned; see DESIGN.md).
#pragma once

#include <span>

#include "util/rng.hpp"

namespace oxmlc::oxram {

struct DriftParams {
  bool enabled = true;

  // Fast post-program relaxation (per-event amplitude, sampled by
  // sample_relaxation_amplitude at each program event).
  double tau_fast = 1e-6;      // s; relaxation onset (after the pulse tail)
  double nu_fast = 0.8;        // kernel exponent: mostly settled by ~1e3*tau
  double relax_fraction = 0.015;  // median fractional depth relaxed as t->inf
  double sigma_relax = 0.9;       // lognormal sigma of the per-event amplitude

  // Slow retention drift (per-cell amplitude, sampled once per device by
  // sample_drift_amplitude — the "activation" D2D quantity).
  double tau_slow = 1.0;       // s
  double nu_slow = 0.06;       // log-time slope: decades of t keep closing
  double drift_fraction = 0.12;  // median fractional depth lost as t->inf
  double sigma_drift_rel = 0.3;  // lognormal sigma of the per-cell amplitude

  // Arrhenius acceleration of the slow component: time is scaled by
  // exp(ea/k * (1/T_ref - 1/T_oper)); T_oper = T_ref means factor 1.
  double ea_retention = 0.45;  // eV
  double t_reference = 300.0;  // K; temperature the fractions are quoted at
  double t_operating = 300.0;  // K; bake / operating temperature
};

// Saturating log-time kernel phi(t) = 1 - (1 + t/tau)^-nu; 0 for t <= 0.
double drift_phi(double t, double tau, double nu);

// Arrhenius time-acceleration factor of the slow component.
double drift_acceleration(const DriftParams& p);

// Scalar reference trajectory: gap `t` seconds after the anchor event.
// `g_anchor` is the gap at the last program event, `g_min` the cell's LRS
// floor, `relax_amp`/`drift_amp` the sampled fractional amplitudes.
double drifted_gap(const DriftParams& p, double g_anchor, double g_min,
                   double relax_amp, double drift_amp, double t);

// Batched SoA kernel over parallel lanes:
//   out[i] = drifted_gap(p, g_anchor[i], g_min[i], relax_amp[i], drift_amp[i], t[i])
// All spans must have equal length; `out` may alias none of the inputs. The
// loop hoists the per-call invariants (acceleration, reciprocal taus) and
// evaluates the power-law kernels as exp(-nu * log1p(t/tau)), which agrees
// with the scalar std::pow path to ~1 ulp — the batch-vs-scalar suite pins
// the agreement at 1e-9 relative on a 4096-cell array.
//
// Dispatches on num::simd::active_backend(): the AVX2 and portable pack
// kernels are bitwise-identical to each other (same IEEE op sequence), and
// OXMLC_SIMD=off routes to drifted_gap_batch_reference.
void drifted_gap_batch(const DriftParams& p, std::span<const double> g_anchor,
                       std::span<const double> g_min, std::span<const double> relax_amp,
                       std::span<const double> drift_amp, std::span<const double> t,
                       std::span<double> out);

// The original scalar-libm SoA loop, kept as the 1e-9-pinned reference the
// pack kernels are tested against (and the OXMLC_SIMD=off execution path).
void drifted_gap_batch_reference(const DriftParams& p, std::span<const double> g_anchor,
                                 std::span<const double> g_min,
                                 std::span<const double> relax_amp,
                                 std::span<const double> drift_amp,
                                 std::span<const double> t, std::span<double> out);

// Per-program-event fast-relaxation amplitude: lognormal around
// relax_fraction. One draw per call; 0 when drift is disabled.
double sample_relaxation_amplitude(const DriftParams& p, Rng& rng);

// Per-cell slow-drift amplitude: lognormal around drift_fraction. One draw
// per call; 0 when drift is disabled.
double sample_drift_amplitude(const DriftParams& p, Rng& rng);

}  // namespace oxmlc::oxram
