// Device presets beyond the baseline HfO2 OxRAM.
//
// The paper's conclusion names its own future work: "Extensions of the
// current work will address the application of the presented MLC design
// scheme to any resistive RAM technology providing an analog programming
// mechanism, such as phase-change memory (PCM)." The write-termination scheme
// only needs (a) a monotone state -> current mapping and (b) a programming
// polarity with gradual, self-limiting dynamics — both of which the gap-state
// model expresses for more than one technology.
//
// `pcm_like_params()` re-parameterizes the model for a PCM-flavoured device:
// the "gap" plays the amorphous-cap thickness, the crystalline ON state is a
// few kOhm, the window is wider and the programming dynamics slower — so the
// same QlcProgrammer/termination machinery runs unchanged on it
// (bench_ext_pcm demonstrates multi-level operation end to end).
#pragma once

#include "oxram/fast_cell.hpp"
#include "oxram/params.hpp"

namespace oxmlc::oxram {

// PCM-flavoured parameter set (melt-quench amorphization as the "oxidation"
// direction, crystallization as the "reduction" direction).
OxramParams pcm_like_params();

// Stack tuned for the PCM window: higher programming currents, so the drive
// and the mirror operating range shift up.
StackConfig pcm_like_stack();

// The RESET (amorphize) operation template for the PCM preset.
ResetOperation pcm_like_reset();

// The SET (crystallize) operation template for the PCM preset.
SetOperation pcm_like_set();

// Termination-current window for MLC on the PCM preset (analog of the
// paper's 6-36 uA OxRAM window).
inline constexpr double kPcmIrefMin = 12e-6;
inline constexpr double kPcmIrefMax = 60e-6;

}  // namespace oxmlc::oxram
