#include "oxram/model.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/error.hpp"
#include "util/units.hpp"

namespace oxmlc::oxram {
namespace {

// sinh with overflow clamp (|x| ~ 700 overflows double; circuits never reach
// a meaningful |V/v0| > 60).
double safe_sinh(double x) { return std::sinh(std::clamp(x, -60.0, 60.0)); }
double safe_cosh(double x) { return std::cosh(std::clamp(x, -60.0, 60.0)); }

double kT_ev(double temperature) {
  return phys::kBoltzmann * temperature / phys::kElementaryCharge;
}

}  // namespace

OxramParams sample_device(const OxramParams& nominal, const OxramVariability& variability,
                          Rng& rng) {
  OxramParams p = nominal;
  if (!variability.enabled) return p;
  // alpha and Lx are *switching* parameters in the Bocquet model the paper
  // varies (+/-5 %): they set how fast the gap moves under a given bias, not
  // the conduction law. Thickness enters through the internal field V/Lx, so
  // it scales the barrier-lowering efficiency xi. Conduction-law parameters
  // stay nominal — which is precisely why the current-terminated RESET is
  // "agnostic about resistance distribution" (paper §4.4.2): the feedback
  // pins the final current, and a uniform I(V) law maps it to a tight R.
  p.alpha = rng.truncated_normal(nominal.alpha, variability.sigma_alpha_rel * nominal.alpha,
                                 0.05, 0.95);
  p.lx = rng.truncated_normal(nominal.lx, variability.sigma_lx_rel * nominal.lx,
                              0.5 * nominal.lx, 1.5 * nominal.lx);
  p.xi = nominal.xi * (OxramParams::kNominalLx / p.lx);
  return p;
}

double sample_cycle_rate_factor(const OxramVariability& variability, Rng& rng) {
  if (!variability.enabled || variability.sigma_rate_c2c <= 0.0) return 1.0;
  return rng.lognormal(0.0, variability.sigma_rate_c2c);
}

double cell_current(const OxramParams& p, double v, double g) {
  return p.i0 * std::exp(-g / p.g0) * safe_sinh(v / p.v0) + v / p.r_leak;
}

double cell_conductance(const OxramParams& p, double v, double g) {
  return p.i0 * std::exp(-g / p.g0) * safe_cosh(v / p.v0) / p.v0 + 1.0 / p.r_leak;
}

double cell_didg(const OxramParams& p, double v, double g) {
  return -p.i0 / p.g0 * std::exp(-g / p.g0) * safe_sinh(v / p.v0);
}

double local_temperature(const OxramParams& p, double v, double i) {
  const double rise = std::min(p.r_th * std::fabs(v * i), p.t_max_rise);
  return p.t_ambient + rise;
}

double gap_rate(const OxramParams& p, double v, double g, bool virgin, double rate_factor) {
  const double i = cell_current(p, v, g);
  const double kt = kT_ev(local_temperature(p, v, i));

  // Oxidation: filament dissolves, gap grows. Activated by negative cell
  // voltage (RESET polarity); the driving force is the field across the gap,
  // so the process self-limits as the gap deepens (negative feedback).
  const double field = std::min(2.0, std::sqrt(p.g_ref / std::max(g, 0.25 * p.g_ref)));
  const double v_reset = std::max(0.0, -v);  // only the RESET polarity drives oxidation
  const double ox_exponent =
      std::min(0.0, -(p.ea_ox - p.alpha * p.xi * v_reset * field) / kt);
  const double ox = p.k0 * (1.0 - g / p.g_max) * std::exp(ox_exponent);

  // Reduction: vacancies are generated at the filament tip and drift, gap
  // shrinks. Activated by positive voltage (SET polarity) with the full cell
  // voltage as driving force; a virgin device carries the forming barrier.
  const double ea_red = p.ea_red + (virgin ? p.dea_form : 0.0);
  const double v_set = std::max(0.0, v);
  const double red_exponent =
      std::min(0.0, -(ea_red - (1.0 - p.alpha) * p.xi * v_set) / kt);
  const double red = p.k0 * (g / p.g_max) * std::exp(red_exponent);

  return rate_factor * (ox - red);
}

double advance_gap(const OxramParams& p, double v, double g, bool virgin, double dt,
                   double rate_factor) {
  const double g_upper = virgin ? std::max(p.g_virgin, p.g_max) : p.g_max;
  const double g_lower = p.g_min;
  double remaining = dt;
  double gap = g;
  // Adaptive sub-stepping: bound the per-substep gap motion so the exponential
  // current/rate coupling stays resolved even when the caller's dt is coarse.
  for (int guard = 0; guard < 100000 && remaining > 0.0; ++guard) {
    const double rate = gap_rate(p, v, gap, virgin, rate_factor);
    if (rate == 0.0) break;
    const double max_move = 0.05 * p.g0;
    double h = std::min(remaining, max_move / std::fabs(rate));
    // Midpoint (RK2) step.
    const double g_half = std::clamp(gap + 0.5 * h * rate, g_lower, g_upper);
    const double rate_half = gap_rate(p, v, g_half, virgin, rate_factor);
    gap += h * rate_half;
    gap = std::clamp(gap, g_lower, g_upper);
    remaining -= h;
    if (gap <= g_lower && rate_half < 0.0) break;
    if (gap >= g_upper && rate_half > 0.0) break;
  }
  return gap;
}

double resistance_at(const OxramParams& p, double v_read, double g) {
  OXMLC_CHECK(v_read != 0.0, "resistance_at: read voltage must be nonzero");
  return v_read / cell_current(p, v_read, g);
}

double gap_for_resistance(const OxramParams& p, double v_read, double r_target) {
  const double r_lo = resistance_at(p, v_read, 0.0);
  const double r_hi = resistance_at(p, v_read, p.g_max);
  OXMLC_CHECK(r_target >= r_lo && r_target <= r_hi,
              "gap_for_resistance: target outside representable range");
  double lo = 0.0, hi = p.g_max;
  for (int iter = 0; iter < 200; ++iter) {
    const double mid = 0.5 * (lo + hi);
    if (resistance_at(p, v_read, mid) < r_target) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return 0.5 * (lo + hi);
}

double voltage_for_current(const OxramParams& p, double i_target, double g, double v_max) {
  OXMLC_CHECK(i_target > 0.0, "voltage_for_current: target must be positive");
  OXMLC_CHECK(cell_current(p, v_max, g) >= i_target,
              "voltage_for_current: target unreachable below v_max");
  // Analytic seed from the dominant (tunneling) term, then safeguarded Newton
  // on the monotone I(V); the leak correction is tiny, so 2-3 iterations
  // reach machine-level accuracy.
  const double i_tun = p.i0 * std::exp(-g / p.g0);
  double v = std::min(v_max, p.v0 * std::asinh(i_target / i_tun));
  double lo = 0.0, hi = v_max;
  for (int iter = 0; iter < 60; ++iter) {
    const double f = cell_current(p, v, g) - i_target;
    if (f > 0.0) {
      hi = std::min(hi, v);
    } else {
      lo = std::max(lo, v);
    }
    const double df = cell_conductance(p, v, g);
    double v_next = v - f / df;
    if (!(v_next > lo && v_next < hi)) v_next = 0.5 * (lo + hi);  // bisection fallback
    if (std::fabs(v_next - v) < 1e-12 * (1.0 + std::fabs(v))) return v_next;
    v = v_next;
  }
  return v;
}

double recommended_dt(const OxramParams& p, double v, double g, bool virgin,
                      double rate_factor, double max_fraction) {
  return recommended_dt_given_rate(p, g, virgin, gap_rate(p, v, g, virgin, rate_factor),
                                   max_fraction);
}

double recommended_dt_given_rate(const OxramParams& p, double g, bool virgin, double rate,
                                 double max_fraction) {
  if (rate == 0.0) return std::numeric_limits<double>::infinity();
  // A rate pushing into a bound the gap already sits on cannot move the
  // state: no step-size constraint (otherwise a fully-SET cell held at bias
  // would force femtosecond steps for the rest of the pulse).
  const double g_upper = virgin ? std::max(p.g_virgin, p.g_max) : p.g_max;
  const double eps = 1e-4 * p.g0;
  if ((g <= p.g_min + eps && rate < 0.0) || (g >= g_upper - eps && rate > 0.0)) {
    return std::numeric_limits<double>::infinity();
  }
  return max_fraction * p.g0 / std::fabs(rate);
}

}  // namespace oxmlc::oxram
