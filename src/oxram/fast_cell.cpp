#include "oxram/fast_cell.hpp"

#include <algorithm>
#include <cmath>

#include "oxram/stack_solver.hpp"
#include "spice/waveform.hpp"
#include "util/error.hpp"

namespace oxmlc::oxram {
namespace {

// Assembles the operating point once the solved current is known.
StackOperatingPoint operating_point_at(const detail::StackProblem& problem, double i,
                                       double v_cell, double v_sink) {
  StackOperatingPoint op;
  op.current = i;
  op.v_cell = v_cell;
  op.v_sink = v_sink;
  if (problem.reset_polarity) {
    op.v_access = std::max(
        0.0, (problem.v_drive - i * problem.stack.r_series) - (op.v_sink + op.v_cell));
  } else {
    op.v_access = std::max(0.0, problem.v_drive - i * problem.stack.r_series - op.v_cell);
  }
  return op;
}

// Interval convergence test shared by both solvers (see fast_cell.hpp).
bool bracket_converged(double lo, double hi) {
  return hi - lo <= std::max(kStackSolveRelTol * hi, kStackSolveAbsTol);
}

}  // namespace

StackOperatingPoint solve_stack(const OxramParams& cell, double g, const StackConfig& stack,
                                Polarity polarity, double v_drive, double v_wl) {
  StackOperatingPoint op;
  if (v_drive <= 0.0) return op;

  const detail::StackProblem problem{
      cell,          stack, g, v_drive, v_wl, polarity == Polarity::kReset,
      stack.bl_through_mirror && polarity == Polarity::kReset};

  double lo = 0.0, hi = detail::kStackCurrentMax;
  if (problem.residual(lo) <= 0.0) return op;  // stack cannot conduct
  OXMLC_CHECK(problem.residual(hi) < 0.0, "solve_stack: upper current bracket too small");
  // Bisection on the monotone residual, stopping early once the interval is
  // resolved to the shared tolerance; the iteration cap reproduces the
  // historical 52 halvings (sub-pA from a 10 mA bracket) when the relative
  // criterion cannot engage.
  for (int iter = 0; iter < kStackSolveMaxIter && !bracket_converged(lo, hi); ++iter) {
    const double mid = 0.5 * (lo + hi);
    if (problem.residual(mid) > 0.0) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  const double i = 0.5 * (lo + hi);
  const double v_cell = detail::cell_voltage_capped(cell, i, g, detail::kStackVcellCap);
  const double v_sink =
      problem.through_mirror ? detail::mirror_drop(stack.mirror, i) : 0.0;
  return operating_point_at(problem, i, v_cell, v_sink);
}

StackOperatingPoint solve_stack_warm(const OxramParams& cell, double g,
                                     const StackConfig& stack, Polarity polarity,
                                     double v_drive, double v_wl, double i_warm) {
  StackOperatingPoint op;
  if (v_drive <= 0.0) return op;

  const detail::StackProblem problem{
      cell,          stack, g, v_drive, v_wl, polarity == Polarity::kReset,
      stack.bl_through_mirror && polarity == Polarity::kReset};

  double lo = 0.0, hi = detail::kStackCurrentMax;
  if (problem.residual(lo) <= 0.0) return op;  // stack cannot conduct

  // Safeguarded Newton. F' <= -1 everywhere, so |i - root| <= |F(i)| is a
  // rigorous error bound — tighter than the bracket, which Newton's one-sided
  // convergence rarely closes. Iterates escaping the bracket fall back to
  // bisection, so the worst case degrades to the scalar solver, never past it.
  double i = i_warm > 0.0 && i_warm < hi ? i_warm : 0.5 * (lo + hi);
  double v_cell = 0.0, v_sink = 0.0;
  for (int iter = 0; iter < 64; ++iter) {
    double dfdi = -1.0;
    const double f = problem.residual_with_derivative(i, dfdi, &v_cell, &v_sink);
    if (std::fabs(f) <= std::max(kStackSolveRelTol * i, kStackSolveAbsTol)) {
      return operating_point_at(problem, i, v_cell, v_sink);
    }
    if (f > 0.0) {
      lo = i;
    } else {
      hi = i;
    }
    if (bracket_converged(lo, hi)) break;
    double i_next = i - f / dfdi;
    if (!(i_next > lo && i_next < hi)) i_next = 0.5 * (lo + hi);
    i = i_next;
  }
  OXMLC_CHECK(hi < detail::kStackCurrentMax || problem.residual(hi) < 0.0,
              "solve_stack_warm: upper current bracket too small");
  i = 0.5 * (lo + hi);
  v_cell = detail::cell_voltage_capped(cell, i, g, detail::kStackVcellCap);
  v_sink = problem.through_mirror ? detail::mirror_drop(stack.mirror, i) : 0.0;
  return operating_point_at(problem, i, v_cell, v_sink);
}

FastCell::FastCell(const OxramParams& params, const StackConfig& stack, double initial_gap,
                   bool virgin)
    : params_(params), stack_(stack), gap_(initial_gap), virgin_(virgin) {}

FastCell FastCell::formed_lrs(const OxramParams& params, const StackConfig& stack) {
  return FastCell(params, stack, params.g_min, /*virgin=*/false);
}

OperationResult FastCell::apply_reset(const ResetOperation& op) {
  return run_pulse(op.pulse, Polarity::kReset, op.v_wl, /*through_mirror=*/op.iref.has_value(),
                   op.iref, op.termination_delay, op.record_trajectory, op.dt_max);
}

OperationResult FastCell::apply_set(const SetOperation& op) {
  return run_pulse(op.pulse, Polarity::kSet, op.v_wl, /*through_mirror=*/false, std::nullopt,
                   0.0, op.record_trajectory, op.dt_max);
}

OperationResult FastCell::apply_forming(const FormingOperation& op) {
  return run_pulse(op.pulse, Polarity::kSet, op.v_wl, /*through_mirror=*/false, std::nullopt,
                   0.0, op.record_trajectory, op.dt_max);
}

ReadResult FastCell::read(double v_read, double v_wl) const {
  ReadResult r;
  const StackOperatingPoint op = solve_stack(params_, gap_, stack_, Polarity::kSet,
                                             v_read, v_wl);
  r.current = op.current;
  if (op.current > 0.0) {
    r.r_cell = op.v_cell / op.current;
    r.r_apparent = v_read / op.current;
  } else {
    r.r_cell = r.r_apparent = params_.r_leak;
  }
  return r;
}

OperationResult FastCell::run_pulse(const PulseShape& pulse, Polarity polarity, double v_wl,
                                    bool through_mirror, std::optional<double> iref,
                                    double termination_delay, bool record, double dt_max) {
  OperationResult result;
  result.final_gap = gap_;

  spice::PulseSpec spec;
  spec.v1 = 0.0;
  spec.v2 = pulse.amplitude;
  spec.delay = 0.0;
  spec.rise = pulse.rise;
  spec.fall = pulse.fall;
  spec.width = pulse.width;
  const spice::PulseWaveform natural(spec);
  const double natural_end = pulse.rise + pulse.width + pulse.fall;

  StackConfig stack = stack_;
  stack.bl_through_mirror = through_mirror;

  // Once termination is commanded the drive ramps down from its value at the
  // command instant.
  double ramp_start = -1.0;
  double ramp_from = 0.0;
  auto drive_value = [&](double t) {
    if (ramp_start < 0.0 || t <= ramp_start) return natural.value(t);
    const double into = t - ramp_start;
    if (into >= pulse.fall) return 0.0;
    return ramp_from * (1.0 - into / pulse.fall);
  };

  double t = 0.0;
  double t_end = natural_end;
  double prev_i = 0.0, prev_p_src = 0.0, prev_p_cell = 0.0, prev_t = 0.0;
  bool first_sample = true;

  const double sign = polarity == Polarity::kReset ? -1.0 : 1.0;

  while (t < t_end - 1e-15) {
    const double v_d = drive_value(t);
    const StackOperatingPoint sp = solve_stack(params_, gap_, stack, polarity, v_d, v_wl);
    const double v_cell_signed = sign * sp.v_cell;

    if (record) {
      result.trajectory.push_back({t, sp.current, v_cell_signed, gap_});
    }

    // Trapezoidal energy accumulation.
    if (!first_sample) {
      const double dt_seg = t - prev_t;
      result.energy_source += 0.5 * (prev_p_src + v_d * sp.current) * dt_seg;
      result.energy_cell += 0.5 * (prev_p_cell + sp.v_cell * sp.current) * dt_seg;
    }
    prev_p_src = v_d * sp.current;
    prev_p_cell = sp.v_cell * sp.current;

    // Termination detection (plateau only, falling crossing or already-below).
    if (iref && !result.terminated && t >= pulse.rise && ramp_start < 0.0) {
      if (sp.current <= *iref) {
        // Linear interpolation to the crossing inside the last step.
        double t_cross = t;
        if (!first_sample && prev_i > *iref) {
          t_cross = prev_t + (t - prev_t) * (prev_i - *iref) / (prev_i - sp.current);
        }
        result.terminated = true;
        result.t_terminate = t_cross;
        ramp_start = t_cross + termination_delay;
        ramp_from = drive_value(ramp_start);
        t_end = std::min(t_end, ramp_start + pulse.fall);
      }
    }
    prev_i = sp.current;
    prev_t = t;
    first_sample = false;

    // --- choose the next step ---
    // Near the termination crossing the step is refined so the gap moves only
    // a sliver of g0 per step: the decision current maps exponentially to R,
    // so crossing-localization error converts 1:1 into programmed-R error.
    double gap_fraction = 0.1;
    double dt_cap = dt_max;
    if (iref && !result.terminated && sp.current > 0.0 && sp.current < 2.0 * *iref) {
      gap_fraction = 0.004;
      dt_cap = std::min(dt_cap, 5e-9);
    }
    double dt = std::min(dt_cap, recommended_dt(params_, v_cell_signed, gap_, virgin_,
                                                rate_factor_, gap_fraction));
    // Land on waveform corners so the plateau entry/exit are resolved.
    for (double corner : {pulse.rise, pulse.rise + pulse.width, ramp_start,
                          ramp_start >= 0.0 ? ramp_start + pulse.fall : -1.0, t_end}) {
      if (corner > t + 1e-15 && corner < t + dt) dt = corner - t;
    }
    dt = std::max(dt, 1e-13);

    gap_ = advance_gap(params_, v_cell_signed, gap_, virgin_, dt, rate_factor_);
    if (virgin_ && gap_ < params_.g_max * 0.98) virgin_ = false;
    t += dt;
  }

  result.t_end = t_end;
  if (!result.terminated) result.t_terminate = natural_end;
  result.final_gap = gap_;
  return result;
}

}  // namespace oxmlc::oxram
