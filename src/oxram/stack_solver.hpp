// Internal: the quasi-static stack residual shared by the scalar solver
// (solve_stack, bisection) and the batched warm-start solver
// (solve_stack_warm, safeguarded Newton; see batch_kernel.hpp).
//
// Both solvers find the root of the same strictly decreasing function
//
//   F(I) = Ids_access(Vgs(I), Vds(I)) - I
//
// so factoring the residual here guarantees the two paths agree on the
// *equation* and differ only in how many evaluations they spend converging —
// the property the batch-vs-scalar equivalence suite leans on. F' <= -1
// everywhere (the -I term; the access-device terms only make it more
// negative), which gives the Newton path a global error bound:
// |I - root| <= |F(I)|.
#pragma once

#include <cmath>

#include "devices/mosfet.hpp"
#include "oxram/fast_cell.hpp"
#include "oxram/model.hpp"

namespace oxmlc::oxram::detail {

// Upper current bracket: no stack configuration reaches 10 mA (the paper's
// window tops out at 36 uA; even a fully-SET cell under forming bias stays
// below 1 mA).
inline constexpr double kStackCurrentMax = 10e-3;

// Cell-voltage saturation used when the conduction law cannot carry the
// probed current below this voltage (virgin devices early in forming).
inline constexpr double kStackVcellCap = 5.0;

// Drain current of the access transistor with Vds clamped at 0 (the stack
// solver only probes the forward-conduction branch).
inline double access_current(const dev::MosfetParams& params, double vgs, double vds) {
  if (vds <= 0.0) return 0.0;
  return dev::evaluate_level1(params, vgs, vds, 0.0).ids;
}

// Gate-source voltage of the diode-connected mirror input at current i
// (level-1 saturation inverse; the mirror is wide, so Vov stays small).
inline double mirror_drop(const dev::MosfetParams& params, double i) {
  if (i <= 0.0) return params.vt0;
  return params.vt0 + std::sqrt(2.0 * i / params.beta());
}

// Cell voltage magnitude carrying current i at gap g, saturated at v_cap.
inline double cell_voltage_capped(const OxramParams& cell, double i, double g,
                                  double v_cap) {
  if (i <= 0.0) return 0.0;
  if (cell_current(cell, v_cap, g) <= i) return v_cap;
  return voltage_for_current(cell, i, g, v_cap);
}

// One stack solve instance: the cell, its electrical environment, and the
// applied biases, frozen for the duration of one root find.
struct StackProblem {
  const OxramParams& cell;
  const StackConfig& stack;
  double g = 0.0;
  double v_drive = 0.0;
  double v_wl = 0.0;
  bool reset_polarity = false;
  bool through_mirror = false;

  // F(i); also reports the node voltages so callers can assemble the
  // operating point without re-solving.
  double residual(double i, double* v_cell_out = nullptr,
                  double* v_sink_out = nullptr) const {
    const double v_c = cell_voltage_capped(cell, i, g, kStackVcellCap);
    const double v_sink = through_mirror ? mirror_drop(stack.mirror, i) : 0.0;
    if (v_cell_out != nullptr) *v_cell_out = v_c;
    if (v_sink_out != nullptr) *v_sink_out = v_sink;
    double vgs = 0.0, vds = 0.0;
    if (reset_polarity) {
      // SL (drive) - access - BE - cell - TE/BL - [mirror] - gnd.
      const double n_be = v_sink + v_c;
      vgs = v_wl - n_be;
      vds = (v_drive - i * stack.r_series) - n_be;
    } else {
      // BL (drive) - TE - cell - BE - access - SL/gnd.
      const double n_be = v_drive - i * stack.r_series - v_c;
      vgs = v_wl;
      vds = n_be;
    }
    return access_current(stack.access, vgs, vds) - i;
  }

  // F(i) and dF/di in one evaluation (i > 0). The derivative assembles the
  // chain rule over the same pieces residual() uses: dv_cell/di from the cell
  // conductance (0 when the voltage cap binds), dv_sink/di from the mirror
  // square law, and the access device's (gm, gds) from the level-1 model.
  double residual_with_derivative(double i, double& dfdi, double* v_cell_out = nullptr,
                                  double* v_sink_out = nullptr) const {
    const double v_c = cell_voltage_capped(cell, i, g, kStackVcellCap);
    const double v_sink = through_mirror ? mirror_drop(stack.mirror, i) : 0.0;
    if (v_cell_out != nullptr) *v_cell_out = v_c;
    if (v_sink_out != nullptr) *v_sink_out = v_sink;

    const double dvc_di =
        v_c >= kStackVcellCap ? 0.0 : 1.0 / cell_conductance(cell, v_c, g);
    const double dvsink_di =
        through_mirror && i > 0.0 ? 1.0 / std::sqrt(2.0 * i * stack.mirror.beta()) : 0.0;

    double vgs = 0.0, vds = 0.0, dvgs_di = 0.0, dvds_di = 0.0;
    if (reset_polarity) {
      const double n_be = v_sink + v_c;
      vgs = v_wl - n_be;
      vds = (v_drive - i * stack.r_series) - n_be;
      dvgs_di = -(dvsink_di + dvc_di);
      dvds_di = -stack.r_series - (dvsink_di + dvc_di);
    } else {
      const double n_be = v_drive - i * stack.r_series - v_c;
      vgs = v_wl;
      vds = n_be;
      dvds_di = -stack.r_series - dvc_di;
    }

    if (vds <= 0.0) {
      dfdi = -1.0;
      return -i;
    }
    const dev::MosOperatingPoint op = dev::evaluate_level1(stack.access, vgs, vds, 0.0);
    dfdi = op.gm * dvgs_di + op.gds * dvds_di - 1.0;
    return op.ids - i;
  }
};

}  // namespace oxmlc::oxram::detail
