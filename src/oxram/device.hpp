// OxRAM cell as an MNA device for full-circuit (SPICE-level) simulation.
//
// The gap state is frozen during each Newton solve (the conduction law is
// stamped with its voltage linearization) and advanced after the step is
// accepted, integrating dg/dt with the converged cell voltage. The device
// caps the engine's step size so the gap never moves more than a fraction of
// g0 per step, which keeps this quasi-static splitting accurate; the fast
// path (fast_cell.hpp) and a dedicated integration test cross-check it.
#pragma once

#include "oxram/model.hpp"
#include "spice/device.hpp"

namespace oxmlc::oxram {

class OxramDevice final : public spice::Device {
 public:
  // Terminals: top electrode (TE, bit-line side), bottom electrode (BE).
  // V = V(te) - V(be); V > 0 is the SET polarity.
  OxramDevice(std::string name, int te, int be, const OxramParams& params,
              double initial_gap, bool virgin = false);

  void stamp(const spice::StampContext& ctx, spice::Stamper& stamper) override;
  void commit_step(const spice::StampContext& ctx) override;
  double recommend_dt(const spice::StampContext& ctx) const override;

  // --- state access ---
  double gap() const { return gap_; }
  void set_gap(double gap) { gap_ = gap; }
  bool virgin() const { return virgin_; }
  void set_virgin(bool virgin) { virgin_ = virgin; }

  const OxramParams& params() const { return params_; }
  void set_params(const OxramParams& params) { params_ = params; }

  // Per-operation C2C rate multiplier (set before each programming pulse).
  void set_rate_factor(double factor) { rate_factor_ = factor; }

  // Cell current at iterate x (TE -> BE).
  double current(std::span<const double> x) const;

  // Read-equivalent resistance of the present state at `v_read`.
  double resistance(double v_read = 0.3) const {
    return resistance_at(params_, v_read, gap_);
  }

 private:
  double terminal_voltage(std::span<const double> x) const;

  OxramParams params_;
  double gap_;
  bool virgin_;
  double rate_factor_ = 1.0;
};

}  // namespace oxmlc::oxram
