// Batched structure-of-arrays fast path: N cells advanced in lockstep
// through the quasi-static stack solve and gap ODE.
//
// The scalar path (fast_cell.hpp) programs one cell at a time; array-scale
// workloads — a 16-cell word RESET, a 16-level Monte-Carlo trial, a full
// array image — are loops over it, O(cells) serial inner bisections. This
// kernel holds the hot per-lane state (gap, warm-start current, C2C rate
// factor, sampled device parameters) in contiguous arrays and advances every
// active lane one time step per round:
//
//   while lanes remain active:
//     for each active lane: solve stack (warm-start Newton), advance gap ODE
//     compact: lanes whose pulse completed retire and stop being visited
//
// Per-lane termination masking is the SoA analogue of the per-bit-line stop
// in array/word_path.hpp: a lane whose cell current reaches its IrefR enters
// its commanded ramp-down and retires, while neighbouring lanes keep
// programming to their own (deeper) references.
//
// Each lane replays exactly the control flow of FastCell::run_pulse — same
// waveform, same termination interpolation, same step-size policy, same gap
// integrator — and the stack solve converges to the same root within the
// shared kStackSolveRelTol (see fast_cell.hpp). The only difference is the
// solver: warm-started safeguarded Newton (~3-5 residual evaluations) in
// place of the scalar path's ~52-halving bisection. The batch-vs-scalar
// equivalence suite (tests/batch_kernel_test.cpp) pins the agreement.
//
// Trajectory recording is a scalar-path-only feature: add_* throws when an
// operation requests it.
#pragma once

#include <cstddef>
#include <vector>

#include "numeric/simd.hpp"
#include "oxram/fast_cell.hpp"
#include "spice/waveform.hpp"

namespace oxmlc::oxram {

// Execution knobs for CellBatch::run(). Neither knob may change results:
// lanes are independent, so sharding them across threads is bit-identical to
// the serial sweep, and the SIMD engine is pinned against the scalar
// reference by the batch equivalence suite.
struct BatchRunOptions {
  // kAuto resolves via num::simd::active_backend() (OXMLC_SIMD env /
  // override); kReference forces the scalar step_lane path.
  num::simd::Backend engine = num::simd::Backend::kAuto;
  // Lane shards claimed through util::parallel_for; 0 = hardware_concurrency.
  std::size_t threads = 1;
};

class CellBatch {
 public:
  CellBatch() = default;

  // Adds one lane programming `cell` with the given operation. The cell's
  // parameters, stack, gap, virgin flag and rate factor are snapshotted at
  // add time; run() writes the final gap/virgin state back. Returns the lane
  // id (index into run()'s result vector). A cell must appear in at most one
  // lane per run, and must not be read or mutated while run() is executing.
  std::size_t add_reset(FastCell& cell, const ResetOperation& op);
  std::size_t add_set(FastCell& cell, const SetOperation& op);
  std::size_t add_forming(FastCell& cell, const FormingOperation& op);

  std::size_t size() const { return gap_.size(); }
  bool empty() const { return gap_.empty(); }

  // Advances every lane to completion and returns per-lane results indexed
  // by lane id. One-shot: call clear() before reusing the batch (capacity is
  // retained across clear()).
  std::vector<OperationResult> run() { return run(BatchRunOptions{}); }
  std::vector<OperationResult> run(const BatchRunOptions& options);

  void clear();

 private:
  // Cold per-lane state: the operation spec and the stepping variables of
  // FastCell::run_pulse, hoisted out of the call stack so a lane can be
  // advanced one step at a time.
  struct LaneControl {
    PulseShape pulse;
    spice::PulseWaveform natural{spice::PulseSpec{}};
    Polarity polarity = Polarity::kSet;
    double v_wl = 0.0;
    double dt_max = 0.0;
    double iref = -1.0;  // < 0: no termination (SET / forming / untimed RESET)
    double termination_delay = 0.0;
    double natural_end = 0.0;
    double t = 0.0;
    double t_end = 0.0;
    double ramp_start = -1.0;
    double ramp_from = 0.0;
    double prev_i = 0.0;
    double prev_p_src = 0.0;
    double prev_p_cell = 0.0;
    double prev_t = 0.0;
    bool first_sample = true;
    bool virgin = false;
  };

  std::size_t add_lane(FastCell& cell, const PulseShape& pulse, Polarity polarity,
                       double v_wl, bool through_mirror, double iref,
                       double termination_delay, bool record_trajectory, double dt_max);

  double drive_value(const LaneControl& lane, double t) const;

  // Advances one lane by one time step; false when the lane's pulse is
  // complete (the lane is finalized and its cell state written back).
  bool step_lane(std::size_t lane);

  // Pieces of the per-step control flow shared verbatim between the scalar
  // step_lane path and the SIMD engine (batch_simd.cpp): result finalization,
  // the energy/termination sample bookkeeping, the near-termination step
  // refinement, and the waveform-corner snapping.
  void finalize_lane(std::size_t lane);
  void update_sample(std::size_t lane, double v_d, double current, double v_cell);
  struct StepPolicy {
    double gap_fraction;
    double dt_cap;
  };
  StepPolicy step_policy(const LaneControl& c, const OperationResult& result,
                         double current) const;
  double apply_corners(const LaneControl& c, double dt) const;

  // Runs one shard of lanes [begin, end) to completion with its own
  // active-lane compaction loop; returns the total steps taken. Shards touch
  // disjoint lane state, so any sharding yields bit-identical results.
  std::uint64_t run_span(std::size_t begin, std::size_t end,
                         num::simd::Backend engine);

  // SIMD engine (batch_simd.cpp): lanes advance four at a time through a
  // v_cell-primal masked Newton stack solve and pack gap integration. All
  // lane updates are masked element-wise, so results are bitwise independent
  // of how lanes happen to group into packs — and therefore of sharding.
  std::uint64_t run_span_simd(std::size_t begin, std::size_t end,
                              num::simd::Backend engine);
  template <typename Pack>
  std::uint64_t run_span_vector(std::size_t begin, std::size_t end);
  template <typename Pack>
  void step_pack(const std::size_t* lanes, std::size_t count);

  // Flattened per-lane parameter arrays the pack engine gathers from (filled
  // by prepare_scratch() at run() start when a SIMD engine is selected;
  // read-only during the run).
  struct VecScratch {
    std::vector<double> i0, g0, v0, r_leak, g_min, g_max, g_ref, k0, ea_ox, ea_red,
        dea_form, axi, bxi, t_ambient, r_th, t_max_rise, g_upper_virgin, r_series,
        v_wl, acc_vt0, acc_beta, acc_lambda, mir_vt0, mir_beta, is_reset, is_mirror,
        sign;
  };
  void prepare_scratch();

  // Hot SoA state, indexed by lane id. gap_, warm_i_ and warm_v_ are read and
  // written every step; params_/stacks_/rate_factor_ are read-only during
  // run(). warm_v_ is the previous step's cell voltage — the SIMD engine's
  // Newton seed; <= 0 means "no warm point" (cold lane or zero-op last step)
  // and routes the lane through the scalar solver for that step.
  std::vector<double> gap_;
  std::vector<double> warm_i_;
  std::vector<double> warm_v_;
  std::vector<double> rate_factor_;
  std::vector<OxramParams> params_;
  std::vector<StackConfig> stacks_;
  VecScratch scratch_;

  std::vector<LaneControl> control_;
  std::vector<FastCell*> cells_;
  std::vector<OperationResult> results_;
};

}  // namespace oxmlc::oxram
