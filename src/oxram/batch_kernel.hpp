// Batched structure-of-arrays fast path: N cells advanced in lockstep
// through the quasi-static stack solve and gap ODE.
//
// The scalar path (fast_cell.hpp) programs one cell at a time; array-scale
// workloads — a 16-cell word RESET, a 16-level Monte-Carlo trial, a full
// array image — are loops over it, O(cells) serial inner bisections. This
// kernel holds the hot per-lane state (gap, warm-start current, C2C rate
// factor, sampled device parameters) in contiguous arrays and advances every
// active lane one time step per round:
//
//   while lanes remain active:
//     for each active lane: solve stack (warm-start Newton), advance gap ODE
//     compact: lanes whose pulse completed retire and stop being visited
//
// Per-lane termination masking is the SoA analogue of the per-bit-line stop
// in array/word_path.hpp: a lane whose cell current reaches its IrefR enters
// its commanded ramp-down and retires, while neighbouring lanes keep
// programming to their own (deeper) references.
//
// Each lane replays exactly the control flow of FastCell::run_pulse — same
// waveform, same termination interpolation, same step-size policy, same gap
// integrator — and the stack solve converges to the same root within the
// shared kStackSolveRelTol (see fast_cell.hpp). The only difference is the
// solver: warm-started safeguarded Newton (~3-5 residual evaluations) in
// place of the scalar path's ~52-halving bisection. The batch-vs-scalar
// equivalence suite (tests/batch_kernel_test.cpp) pins the agreement.
//
// Trajectory recording is a scalar-path-only feature: add_* throws when an
// operation requests it.
#pragma once

#include <cstddef>
#include <vector>

#include "oxram/fast_cell.hpp"
#include "spice/waveform.hpp"

namespace oxmlc::oxram {

class CellBatch {
 public:
  CellBatch() = default;

  // Adds one lane programming `cell` with the given operation. The cell's
  // parameters, stack, gap, virgin flag and rate factor are snapshotted at
  // add time; run() writes the final gap/virgin state back. Returns the lane
  // id (index into run()'s result vector). A cell must appear in at most one
  // lane per run, and must not be read or mutated while run() is executing.
  std::size_t add_reset(FastCell& cell, const ResetOperation& op);
  std::size_t add_set(FastCell& cell, const SetOperation& op);
  std::size_t add_forming(FastCell& cell, const FormingOperation& op);

  std::size_t size() const { return gap_.size(); }
  bool empty() const { return gap_.empty(); }

  // Advances every lane to completion and returns per-lane results indexed
  // by lane id. One-shot: call clear() before reusing the batch (capacity is
  // retained across clear()).
  std::vector<OperationResult> run();

  void clear();

 private:
  // Cold per-lane state: the operation spec and the stepping variables of
  // FastCell::run_pulse, hoisted out of the call stack so a lane can be
  // advanced one step at a time.
  struct LaneControl {
    PulseShape pulse;
    spice::PulseWaveform natural{spice::PulseSpec{}};
    Polarity polarity = Polarity::kSet;
    double v_wl = 0.0;
    double dt_max = 0.0;
    double iref = -1.0;  // < 0: no termination (SET / forming / untimed RESET)
    double termination_delay = 0.0;
    double natural_end = 0.0;
    double t = 0.0;
    double t_end = 0.0;
    double ramp_start = -1.0;
    double ramp_from = 0.0;
    double prev_i = 0.0;
    double prev_p_src = 0.0;
    double prev_p_cell = 0.0;
    double prev_t = 0.0;
    bool first_sample = true;
    bool virgin = false;
  };

  std::size_t add_lane(FastCell& cell, const PulseShape& pulse, Polarity polarity,
                       double v_wl, bool through_mirror, double iref,
                       double termination_delay, bool record_trajectory, double dt_max);

  double drive_value(const LaneControl& lane, double t) const;

  // Advances one lane by one time step; false when the lane's pulse is
  // complete (the lane is finalized and its cell state written back).
  bool step_lane(std::size_t lane);

  // Hot SoA state, indexed by lane id. gap_ and warm_i_ are read and written
  // every step; params_/stacks_/rate_factor_ are read-only during run().
  std::vector<double> gap_;
  std::vector<double> warm_i_;
  std::vector<double> rate_factor_;
  std::vector<OxramParams> params_;
  std::vector<StackConfig> stacks_;

  std::vector<LaneControl> control_;
  std::vector<FastCell*> cells_;
  std::vector<OperationResult> results_;
};

}  // namespace oxmlc::oxram
