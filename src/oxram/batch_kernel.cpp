#include "oxram/batch_kernel.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <numeric>

#include "obs/registry.hpp"
#include "util/error.hpp"
#include "util/parallel_for.hpp"

namespace oxmlc::oxram {
namespace {

struct BatchMetrics {
  obs::Counter& runs = obs::registry().counter("batch.runs");
  obs::Counter& lanes = obs::registry().counter("batch.lanes");
  obs::Counter& lanes_retired = obs::registry().counter("batch.lanes_retired");
  obs::Counter& steps = obs::registry().counter("batch.steps");
  obs::Gauge& lanes_active = obs::registry().gauge("batch.lanes_active");
  obs::Gauge& throughput = obs::registry().gauge("batch.cells_per_second");
  obs::Timer& run_time = obs::registry().timer("batch.run_time");

  static BatchMetrics& get() {
    static BatchMetrics metrics;
    return metrics;
  }
};

}  // namespace

std::size_t CellBatch::add_reset(FastCell& cell, const ResetOperation& op) {
  return add_lane(cell, op.pulse, Polarity::kReset, op.v_wl,
                  /*through_mirror=*/op.iref.has_value(), op.iref.value_or(-1.0),
                  op.termination_delay, op.record_trajectory, op.dt_max);
}

std::size_t CellBatch::add_set(FastCell& cell, const SetOperation& op) {
  return add_lane(cell, op.pulse, Polarity::kSet, op.v_wl, /*through_mirror=*/false,
                  -1.0, 0.0, op.record_trajectory, op.dt_max);
}

std::size_t CellBatch::add_forming(FastCell& cell, const FormingOperation& op) {
  return add_lane(cell, op.pulse, Polarity::kSet, op.v_wl, /*through_mirror=*/false,
                  -1.0, 0.0, op.record_trajectory, op.dt_max);
}

std::size_t CellBatch::add_lane(FastCell& cell, const PulseShape& pulse,
                                Polarity polarity, double v_wl, bool through_mirror,
                                double iref, double termination_delay,
                                bool record_trajectory, double dt_max) {
  OXMLC_CHECK(!record_trajectory,
              "CellBatch: trajectory recording is not supported in batch mode");
  const std::size_t lane = gap_.size();

  gap_.push_back(cell.gap());
  warm_i_.push_back(0.0);
  warm_v_.push_back(0.0);
  rate_factor_.push_back(cell.rate_factor());
  params_.push_back(cell.params());
  StackConfig stack = cell.stack();
  stack.bl_through_mirror = through_mirror;
  stacks_.push_back(stack);
  cells_.push_back(&cell);

  LaneControl control;
  control.pulse = pulse;
  spice::PulseSpec spec;
  spec.v1 = 0.0;
  spec.v2 = pulse.amplitude;
  spec.delay = 0.0;
  spec.rise = pulse.rise;
  spec.fall = pulse.fall;
  spec.width = pulse.width;
  control.natural = spice::PulseWaveform(spec);
  control.polarity = polarity;
  control.v_wl = v_wl;
  control.dt_max = dt_max;
  control.iref = iref;
  control.termination_delay = termination_delay;
  control.natural_end = pulse.rise + pulse.width + pulse.fall;
  control.t_end = control.natural_end;
  control.virgin = cell.virgin();
  control_.push_back(control);
  return lane;
}

double CellBatch::drive_value(const LaneControl& lane, double t) const {
  // Natural trapezoid until a termination command; afterwards the drive ramps
  // down from its value at the command instant (same as FastCell::run_pulse).
  if (lane.ramp_start < 0.0 || t <= lane.ramp_start) return lane.natural.value(t);
  const double into = t - lane.ramp_start;
  if (into >= lane.pulse.fall) return 0.0;
  return lane.ramp_from * (1.0 - into / lane.pulse.fall);
}

void CellBatch::finalize_lane(std::size_t lane) {
  LaneControl& c = control_[lane];
  OperationResult& result = results_[lane];
  result.t_end = c.t_end;
  if (!result.terminated) result.t_terminate = c.natural_end;
  result.final_gap = gap_[lane];
  cells_[lane]->set_gap(gap_[lane]);
  cells_[lane]->set_virgin(c.virgin);
}

void CellBatch::update_sample(std::size_t lane, double v_d, double current,
                              double v_cell) {
  LaneControl& c = control_[lane];
  OperationResult& result = results_[lane];

  // Trapezoidal energy accumulation.
  if (!c.first_sample) {
    const double dt_seg = c.t - c.prev_t;
    result.energy_source += 0.5 * (c.prev_p_src + v_d * current) * dt_seg;
    result.energy_cell += 0.5 * (c.prev_p_cell + v_cell * current) * dt_seg;
  }
  c.prev_p_src = v_d * current;
  c.prev_p_cell = v_cell * current;

  // Termination detection (plateau only, falling crossing or already-below).
  if (c.iref >= 0.0 && !result.terminated && c.t >= c.pulse.rise && c.ramp_start < 0.0) {
    if (current <= c.iref) {
      // Linear interpolation to the crossing inside the last step.
      double t_cross = c.t;
      if (!c.first_sample && c.prev_i > c.iref) {
        t_cross = c.prev_t +
                  (c.t - c.prev_t) * (c.prev_i - c.iref) / (c.prev_i - current);
      }
      result.terminated = true;
      result.t_terminate = t_cross;
      c.ramp_start = t_cross + c.termination_delay;
      c.ramp_from = drive_value(c, c.ramp_start);
      c.t_end = std::min(c.t_end, c.ramp_start + c.pulse.fall);
    }
  }
  c.prev_i = current;
  c.prev_t = c.t;
  c.first_sample = false;
}

CellBatch::StepPolicy CellBatch::step_policy(const LaneControl& c,
                                             const OperationResult& result,
                                             double current) const {
  // Near the termination crossing the step is refined so the gap moves only a
  // sliver of g0 per step (identical policy to FastCell::run_pulse).
  StepPolicy policy{0.1, c.dt_max};
  if (c.iref >= 0.0 && !result.terminated && current > 0.0 && current < 2.0 * c.iref) {
    policy.gap_fraction = 0.004;
    policy.dt_cap = std::min(policy.dt_cap, 5e-9);
  }
  return policy;
}

double CellBatch::apply_corners(const LaneControl& c, double dt) const {
  // Land on waveform corners so the plateau entry/exit are resolved.
  for (double corner : {c.pulse.rise, c.pulse.rise + c.pulse.width, c.ramp_start,
                        c.ramp_start >= 0.0 ? c.ramp_start + c.pulse.fall : -1.0,
                        c.t_end}) {
    if (corner > c.t + 1e-15 && corner < c.t + dt) dt = corner - c.t;
  }
  return std::max(dt, 1e-13);
}

bool CellBatch::step_lane(std::size_t lane) {
  LaneControl& c = control_[lane];

  if (!(c.t < c.t_end - 1e-15)) {
    finalize_lane(lane);
    return false;
  }

  const OxramParams& p = params_[lane];
  const double v_d = drive_value(c, c.t);
  const StackOperatingPoint sp =
      solve_stack_warm(p, gap_[lane], stacks_[lane], c.polarity, v_d, c.v_wl,
                       warm_i_[lane]);
  warm_i_[lane] = sp.current;
  const double sign = c.polarity == Polarity::kReset ? -1.0 : 1.0;
  const double v_cell_signed = sign * sp.v_cell;

  update_sample(lane, v_d, sp.current, sp.v_cell);

  // --- choose the next step (identical policy to FastCell::run_pulse) ---
  const StepPolicy policy = step_policy(c, results_[lane], sp.current);
  double dt = std::min(policy.dt_cap,
                       recommended_dt(p, v_cell_signed, gap_[lane], c.virgin,
                                      rate_factor_[lane], policy.gap_fraction));
  dt = apply_corners(c, dt);

  gap_[lane] =
      advance_gap(p, v_cell_signed, gap_[lane], c.virgin, dt, rate_factor_[lane]);
  if (c.virgin && gap_[lane] < p.g_max * 0.98) c.virgin = false;
  c.t += dt;
  return true;
}

std::uint64_t CellBatch::run_span(std::size_t begin, std::size_t end,
                                  num::simd::Backend engine) {
  if (engine != num::simd::Backend::kReference) {
    return run_span_simd(begin, end, engine);
  }
  BatchMetrics& metrics = BatchMetrics::get();

  // Active-lane compaction: each round visits only the lanes still
  // programming; a completed lane retires in place and is never visited
  // again, so late rounds iterate only the stragglers (the deep levels).
  std::vector<std::size_t> active(end - begin);
  std::iota(active.begin(), active.end(), begin);
  std::uint64_t steps = 0;
  std::uint64_t retired = 0;
  while (!active.empty()) {
    std::size_t kept = 0;
    for (const std::size_t lane : active) {
      if (step_lane(lane)) {
        active[kept++] = lane;
        ++steps;
      } else {
        ++retired;
      }
    }
    active.resize(kept);
    metrics.lanes_active.set(static_cast<double>(kept));
  }
  metrics.lanes_retired.add(retired);
  return steps;
}

std::vector<OperationResult> CellBatch::run(const BatchRunOptions& options) {
  BatchMetrics& metrics = BatchMetrics::get();
  metrics.runs.add();
  metrics.lanes.add(size());
  obs::ScopedTimer run_timer(metrics.run_time);
  const auto start = std::chrono::steady_clock::now();

  results_.assign(size(), OperationResult{});
  for (std::size_t lane = 0; lane < size(); ++lane) results_[lane].final_gap = gap_[lane];

  const num::simd::Backend engine = options.engine == num::simd::Backend::kAuto
                                        ? num::simd::active_backend()
                                        : options.engine;
  if (engine != num::simd::Backend::kReference) prepare_scratch();

  // Lanes touch disjoint state, so sharding them over the pool is
  // bit-identical to the serial sweep for any thread count or chunking.
  std::atomic<std::uint64_t> steps{0};
  util::ParallelForOptions pool;
  pool.threads = options.threads;
  util::parallel_for(size(), pool, [&](std::size_t begin, std::size_t end) {
    steps.fetch_add(run_span(begin, end, engine), std::memory_order_relaxed);
  });
  metrics.steps.add(steps.load(std::memory_order_relaxed));

  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  if (elapsed > 0.0 && !gap_.empty()) {
    metrics.throughput.set(static_cast<double>(gap_.size()) / elapsed);
  }
  return std::move(results_);
}

void CellBatch::clear() {
  gap_.clear();
  warm_i_.clear();
  warm_v_.clear();
  rate_factor_.clear();
  params_.clear();
  stacks_.clear();
  control_.clear();
  cells_.clear();
  results_.clear();
}

}  // namespace oxmlc::oxram
