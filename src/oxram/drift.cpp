#include "oxram/drift.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace oxmlc::oxram {
namespace {

constexpr double kBoltzmannEv = 8.617333262e-5;  // eV/K

}  // namespace

double drift_phi(double t, double tau, double nu) {
  if (t <= 0.0) {
    return 0.0;
  }
  return 1.0 - std::pow(1.0 + t / tau, -nu);
}

double drift_acceleration(const DriftParams& p) {
  return std::exp(p.ea_retention / kBoltzmannEv *
                  (1.0 / p.t_reference - 1.0 / p.t_operating));
}

double drifted_gap(const DriftParams& p, double g_anchor, double g_min,
                   double relax_amp, double drift_amp, double t) {
  if (!p.enabled || t <= 0.0) {
    return g_anchor;
  }
  const double depth = std::max(g_anchor - g_min, 0.0);
  const double loss = relax_amp * drift_phi(t, p.tau_fast, p.nu_fast) +
                      drift_amp * drift_phi(t * drift_acceleration(p), p.tau_slow, p.nu_slow);
  return g_anchor - depth * std::min(loss, 1.0);
}

void drifted_gap_batch(const DriftParams& p, std::span<const double> g_anchor,
                       std::span<const double> g_min, std::span<const double> relax_amp,
                       std::span<const double> drift_amp, std::span<const double> t,
                       std::span<double> out) {
  const std::size_t n = g_anchor.size();
  OXMLC_CHECK(g_min.size() == n && relax_amp.size() == n && drift_amp.size() == n &&
                  t.size() == n && out.size() == n,
              "drifted_gap_batch: span length mismatch");
  if (!p.enabled) {
    std::copy(g_anchor.begin(), g_anchor.end(), out.begin());
    return;
  }
  const double accel = drift_acceleration(p);
  const double inv_tau_fast = 1.0 / p.tau_fast;
  const double inv_tau_slow = accel / p.tau_slow;
  for (std::size_t i = 0; i < n; ++i) {
    const double ti = t[i];
    if (ti <= 0.0) {
      out[i] = g_anchor[i];
      continue;
    }
    // phi = 1 - (1 + t/tau)^-nu evaluated as exp(-nu*log1p(t/tau)); agrees
    // with the scalar pow() path to ~1 ulp (pinned at 1e-9 rel by tests).
    const double phi_fast = 1.0 - std::exp(-p.nu_fast * std::log1p(ti * inv_tau_fast));
    const double phi_slow = 1.0 - std::exp(-p.nu_slow * std::log1p(ti * inv_tau_slow));
    const double depth = std::max(g_anchor[i] - g_min[i], 0.0);
    const double loss = relax_amp[i] * phi_fast + drift_amp[i] * phi_slow;
    out[i] = g_anchor[i] - depth * std::min(loss, 1.0);
  }
}

double sample_relaxation_amplitude(const DriftParams& p, Rng& rng) {
  if (!p.enabled) {
    return 0.0;
  }
  return p.relax_fraction * rng.lognormal(0.0, p.sigma_relax);
}

double sample_drift_amplitude(const DriftParams& p, Rng& rng) {
  if (!p.enabled) {
    return 0.0;
  }
  return p.drift_fraction * rng.lognormal(0.0, p.sigma_drift_rel);
}

}  // namespace oxmlc::oxram
