#include "oxram/drift.hpp"

#include <algorithm>
#include <cmath>

#include "numeric/simd.hpp"
#include "util/error.hpp"

namespace oxmlc::oxram {
namespace {

constexpr double kBoltzmannEv = 8.617333262e-5;  // eV/K

}  // namespace

double drift_phi(double t, double tau, double nu) {
  if (t <= 0.0) {
    return 0.0;
  }
  return 1.0 - std::pow(1.0 + t / tau, -nu);
}

double drift_acceleration(const DriftParams& p) {
  return std::exp(p.ea_retention / kBoltzmannEv *
                  (1.0 / p.t_reference - 1.0 / p.t_operating));
}

double drifted_gap(const DriftParams& p, double g_anchor, double g_min,
                   double relax_amp, double drift_amp, double t) {
  if (!p.enabled || t <= 0.0) {
    return g_anchor;
  }
  const double depth = std::max(g_anchor - g_min, 0.0);
  const double loss = relax_amp * drift_phi(t, p.tau_fast, p.nu_fast) +
                      drift_amp * drift_phi(t * drift_acceleration(p), p.tau_slow, p.nu_slow);
  return g_anchor - depth * std::min(loss, 1.0);
}

void drifted_gap_batch_reference(const DriftParams& p, std::span<const double> g_anchor,
                                 std::span<const double> g_min,
                                 std::span<const double> relax_amp,
                                 std::span<const double> drift_amp,
                                 std::span<const double> t, std::span<double> out) {
  const std::size_t n = g_anchor.size();
  OXMLC_CHECK(g_min.size() == n && relax_amp.size() == n && drift_amp.size() == n &&
                  t.size() == n && out.size() == n,
              "drifted_gap_batch: span length mismatch");
  if (!p.enabled) {
    std::copy(g_anchor.begin(), g_anchor.end(), out.begin());
    return;
  }
  const double accel = drift_acceleration(p);
  const double inv_tau_fast = 1.0 / p.tau_fast;
  const double inv_tau_slow = accel / p.tau_slow;
  for (std::size_t i = 0; i < n; ++i) {
    const double ti = t[i];
    if (ti <= 0.0) {
      out[i] = g_anchor[i];
      continue;
    }
    // phi = 1 - (1 + t/tau)^-nu evaluated as exp(-nu*log1p(t/tau)); agrees
    // with the scalar pow() path to ~1 ulp (pinned at 1e-9 rel by tests).
    const double phi_fast = 1.0 - std::exp(-p.nu_fast * std::log1p(ti * inv_tau_fast));
    const double phi_slow = 1.0 - std::exp(-p.nu_slow * std::log1p(ti * inv_tau_slow));
    const double depth = std::max(g_anchor[i] - g_min[i], 0.0);
    const double loss = relax_amp[i] * phi_fast + drift_amp[i] * phi_slow;
    out[i] = g_anchor[i] - depth * std::min(loss, 1.0);
  }
}

namespace {

// Pack kernel: the same trajectory with the pack transcendentals, 4 lanes per
// round. Every multiply-add is spelled with P::fma so the compiler cannot
// contract the portable pack differently from the AVX2 one — the two
// instantiations must stay bitwise identical.
template <typename P>
void drifted_gap_batch_pack(const DriftParams& p, const double* g_anchor,
                            const double* g_min, const double* relax_amp,
                            const double* drift_amp, const double* t, double* out,
                            std::size_t n) {
  namespace simd = num::simd;
  using V = typename P::Vec;
  const double accel = drift_acceleration(p);
  const V inv_tau_fast = V::broadcast(1.0 / p.tau_fast);
  const V inv_tau_slow = V::broadcast(accel / p.tau_slow);
  const V neg_nu_fast = V::broadcast(-p.nu_fast);
  const V neg_nu_slow = V::broadcast(-p.nu_slow);
  const V zero = V::broadcast(0.0);
  const V one = V::broadcast(1.0);

  const auto kernel = [&](V ga, V gm, V ra, V da, V ti) {
    const V phi_fast =
        one - simd::exp<P>(neg_nu_fast * simd::log1p<P>(ti * inv_tau_fast));
    const V phi_slow =
        one - simd::exp<P>(neg_nu_slow * simd::log1p<P>(ti * inv_tau_slow));
    const V depth = P::max(ga - gm, zero);
    const V loss = P::min(P::fma(ra, phi_fast, da * phi_slow), one);
    const V drifted = P::fma(zero - depth, loss, ga);
    // t <= 0 lanes stay at the anchor, exactly like the reference early-out.
    return P::select(P::le(ti, zero), ga, drifted);
  };

  std::size_t i = 0;
  for (; i + simd::kPackWidth <= n; i += simd::kPackWidth) {
    kernel(V::load(&g_anchor[i]), V::load(&g_min[i]), V::load(&relax_amp[i]),
           V::load(&drift_amp[i]), V::load(&t[i]))
        .store(&out[i]);
  }
  if (i < n) {
    // Remainder: pad the tail into full packs (lanewise ops cannot leak across
    // lanes, so the padding value is irrelevant — t = 0 keeps it benign).
    double ga[simd::kPackWidth] = {}, gm[simd::kPackWidth] = {},
           ra[simd::kPackWidth] = {}, da[simd::kPackWidth] = {},
           ti[simd::kPackWidth] = {}, res[simd::kPackWidth] = {};
    for (std::size_t k = i; k < n; ++k) {
      ga[k - i] = g_anchor[k];
      gm[k - i] = g_min[k];
      ra[k - i] = relax_amp[k];
      da[k - i] = drift_amp[k];
      ti[k - i] = t[k];
    }
    kernel(V::load(ga), V::load(gm), V::load(ra), V::load(da), V::load(ti)).store(res);
    for (std::size_t k = i; k < n; ++k) out[k] = res[k - i];
  }
}

}  // namespace

void drifted_gap_batch(const DriftParams& p, std::span<const double> g_anchor,
                       std::span<const double> g_min, std::span<const double> relax_amp,
                       std::span<const double> drift_amp, std::span<const double> t,
                       std::span<double> out) {
  const std::size_t n = g_anchor.size();
  OXMLC_CHECK(g_min.size() == n && relax_amp.size() == n && drift_amp.size() == n &&
                  t.size() == n && out.size() == n,
              "drifted_gap_batch: span length mismatch");
  if (!p.enabled) {
    std::copy(g_anchor.begin(), g_anchor.end(), out.begin());
    return;
  }
  switch (num::simd::active_backend()) {
#if OXMLC_SIMD_HAS_AVX2
    case num::simd::Backend::kAvx2:
      drifted_gap_batch_pack<num::simd::PackAvx>(p, g_anchor.data(), g_min.data(),
                                                 relax_amp.data(), drift_amp.data(),
                                                 t.data(), out.data(), n);
      return;
#endif
    case num::simd::Backend::kScalar:
      drifted_gap_batch_pack<num::simd::PackScalar>(p, g_anchor.data(), g_min.data(),
                                                    relax_amp.data(), drift_amp.data(),
                                                    t.data(), out.data(), n);
      return;
    default:
      drifted_gap_batch_reference(p, g_anchor, g_min, relax_amp, drift_amp, t, out);
      return;
  }
}

double sample_relaxation_amplitude(const DriftParams& p, Rng& rng) {
  if (!p.enabled) {
    return 0.0;
  }
  return p.relax_fraction * rng.lognormal(0.0, p.sigma_relax);
}

double sample_drift_amplitude(const DriftParams& p, Rng& rng) {
  if (!p.enabled) {
    return 0.0;
  }
  return p.drift_fraction * rng.lognormal(0.0, p.sigma_drift_rel);
}

}  // namespace oxmlc::oxram
