// Stateless evaluation of the OxRAM compact model: conduction, switching
// rates, and helpers to convert between gap and resistance. The MNA device
// (oxram/device.hpp) and the fast cell path (oxram/fast_cell.hpp) both call
// into these functions so the two simulation levels share one physics.
#pragma once

#include "oxram/params.hpp"

namespace oxmlc::oxram {

// Cell current at voltage v (TE-BE) and gap g. Odd in v.
double cell_current(const OxramParams& p, double v, double g);

// dI/dV at constant gap (always positive).
double cell_conductance(const OxramParams& p, double v, double g);

// dI/dg at constant voltage.
double cell_didg(const OxramParams& p, double v, double g);

// Local temperature including Joule heating at operating point (v, i).
double local_temperature(const OxramParams& p, double v, double i);

// Gap velocity dg/dt at (v, g). `virgin` engages the forming barrier;
// `rate_factor` is the per-operation C2C multiplier.
double gap_rate(const OxramParams& p, double v, double g, bool virgin,
                double rate_factor = 1.0);

// Integrates the gap ODE over `dt` holding v constant, with internal
// sub-stepping so each sub-step moves the gap by at most ~0.05 * g0. Returns
// the new gap (clamped to [g_min or 0, g_max / g_virgin]).
double advance_gap(const OxramParams& p, double v, double g, bool virgin, double dt,
                   double rate_factor = 1.0);

// Small-signal resistance V/I at the given read voltage.
double resistance_at(const OxramParams& p, double v_read, double g);

// Inverse of resistance_at in g (bisection; resistance is monotone in g).
// Throws InvalidArgumentError when the target is outside the representable
// range at this read voltage.
double gap_for_resistance(const OxramParams& p, double v_read, double r_target);

// Solves I(v, g) = i_target for v >= 0 (bisection on the monotone I-V).
double voltage_for_current(const OxramParams& p, double i_target, double g,
                           double v_max = 5.0);

// Suggested max transient step so the gap moves <= `max_fraction` * g0.
double recommended_dt(const OxramParams& p, double v, double g, bool virgin,
                      double rate_factor, double max_fraction = 0.1);

// The bound-awareness half of recommended_dt for callers that already hold
// the gap rate at (v, g) — the SIMD batch engine evaluates rates four lanes
// at a time and finishes the per-lane policy through this split.
double recommended_dt_given_rate(const OxramParams& p, double g, bool virgin,
                                 double rate, double max_fraction);

}  // namespace oxmlc::oxram
