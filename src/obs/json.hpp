// Minimal JSON document model used by the telemetry exporters.
//
// Covers exactly the subset the metrics schema needs — objects with ordered
// keys, arrays, strings, doubles, booleans, null — with a writer that emits
// round-trippable doubles (max_digits10) and a recursive-descent parser for
// reading exports back (tests, tooling). Not a general-purpose JSON library:
// no \uXXXX surrogate pairs. The parser rejects duplicate object keys (the
// writer cannot produce them: `set` replaces an existing key in place).
#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <utility>
#include <vector>

namespace oxmlc::obs {

class Json {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Json() = default;
  Json(std::nullptr_t) {}  // NOLINT(google-explicit-constructor)
  Json(bool b) : type_(Type::kBool), bool_(b) {}  // NOLINT
  Json(double d) : type_(Type::kNumber), number_(d) {}  // NOLINT
  Json(int i) : type_(Type::kNumber), number_(i) {}  // NOLINT
  Json(unsigned long long u)  // NOLINT
      : type_(Type::kNumber), number_(static_cast<double>(u)) {}
  Json(std::string s) : type_(Type::kString), string_(std::move(s)) {}  // NOLINT
  Json(const char* s) : type_(Type::kString), string_(s) {}  // NOLINT

  static Json array();
  static Json object();

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_object() const { return type_ == Type::kObject; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_bool() const { return type_ == Type::kBool; }

  // Typed accessors; throw InvalidArgumentError on type mismatch.
  bool as_bool() const;
  double as_number() const;
  const std::string& as_string() const;

  // Array access.
  void push_back(Json value);
  std::size_t size() const;
  const Json& at(std::size_t index) const;

  // Object access. `set` keeps first-insertion order (stable exports);
  // `contains`/`get` look keys up; `get` throws on a missing key.
  void set(const std::string& key, Json value);
  bool contains(const std::string& key) const;
  const Json& get(const std::string& key) const;
  const std::vector<std::pair<std::string, Json>>& members() const;

  // Serialization. `indent` > 0 pretty-prints with that many spaces per level.
  std::string dump(int indent = 0) const;

  // Parses a JSON text; throws InvalidArgumentError with position info on
  // malformed input or trailing garbage.
  static Json parse(const std::string& text);

  bool operator==(const Json& other) const;

 private:
  Type type_ = Type::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<Json> array_;
  std::vector<std::pair<std::string, Json>> object_;

  void dump_to(std::string& out, int indent, int depth) const;
};

}  // namespace oxmlc::obs
