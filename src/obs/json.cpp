#include "obs/json.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>

#include "util/error.hpp"

namespace oxmlc::obs {
namespace {

void append_escaped(std::string& out, const std::string& s) {
  out.push_back('"');
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

void append_number(std::string& out, double d) {
  if (!std::isfinite(d)) {
    // JSON has no Inf/NaN; emit null like most tolerant writers.
    out += "null";
    return;
  }
  if (d == std::floor(d) && std::fabs(d) < 1e15) {
    // Integral values print without an exponent or trailing zeros.
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.0f", d);
    out += buf;
    return;
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", d);
  out += buf;
}

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Json run() {
    Json value = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after JSON value");
    return value;
  }

 private:
  const std::string& text_;
  std::size_t pos_ = 0;

  [[noreturn]] void fail(const std::string& what) const {
    throw InvalidArgumentError("json parse error at offset " + std::to_string(pos_) +
                               ": " + what);
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(const char* literal) {
    std::size_t len = 0;
    while (literal[len] != '\0') ++len;
    if (text_.compare(pos_, len, literal) != 0) return false;
    pos_ += len;
    return true;
  }

  Json parse_value() {
    skip_ws();
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return Json(parse_string());
      case 't':
        if (!consume_literal("true")) fail("bad literal");
        return Json(true);
      case 'f':
        if (!consume_literal("false")) fail("bad literal");
        return Json(false);
      case 'n':
        if (!consume_literal("null")) fail("bad literal");
        return Json(nullptr);
      default: return parse_number();
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      char c = text_[pos_++];
      if (c == '"') break;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      char esc = text_[pos_++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int k = 0; k < 4; ++k) {
            char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else fail("bad hex digit in \\u escape");
          }
          // ASCII only (all the metrics schema emits); reject the rest rather
          // than silently mangle.
          if (code > 0x7F) fail("non-ASCII \\u escape unsupported");
          out.push_back(static_cast<char>(code));
          break;
        }
        default: fail("unknown escape character");
      }
    }
    return out;
  }

  Json parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E' || text_[pos_] == '+' ||
            text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected a value");
    double value = 0.0;
    const auto [ptr, ec] =
        std::from_chars(text_.data() + start, text_.data() + pos_, value);
    if (ec != std::errc() || ptr != text_.data() + pos_) fail("malformed number");
    return Json(value);
  }

  Json parse_array() {
    expect('[');
    Json out = Json::array();
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return out;
    }
    while (true) {
      out.push_back(parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return out;
    }
  }

  Json parse_object() {
    expect('{');
    Json out = Json::object();
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return out;
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      // Reject duplicate keys outright: Json::set would silently keep only
      // the last value, turning a malformed document into a wrong one. Our
      // own exporters cannot produce duplicates (set() replaces in place).
      if (out.contains(key)) fail("duplicate object key: \"" + key + "\"");
      out.set(key, parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return out;
    }
  }
};

}  // namespace

Json Json::array() {
  Json j;
  j.type_ = Type::kArray;
  return j;
}

Json Json::object() {
  Json j;
  j.type_ = Type::kObject;
  return j;
}

bool Json::as_bool() const {
  OXMLC_CHECK(type_ == Type::kBool, "Json: not a bool");
  return bool_;
}

double Json::as_number() const {
  OXMLC_CHECK(type_ == Type::kNumber, "Json: not a number");
  return number_;
}

const std::string& Json::as_string() const {
  OXMLC_CHECK(type_ == Type::kString, "Json: not a string");
  return string_;
}

void Json::push_back(Json value) {
  OXMLC_CHECK(type_ == Type::kArray, "Json: push_back on non-array");
  array_.push_back(std::move(value));
}

std::size_t Json::size() const {
  if (type_ == Type::kArray) return array_.size();
  if (type_ == Type::kObject) return object_.size();
  throw InvalidArgumentError("Json: size() on non-container");
}

const Json& Json::at(std::size_t index) const {
  OXMLC_CHECK(type_ == Type::kArray, "Json: at() on non-array");
  OXMLC_CHECK(index < array_.size(), "Json: array index out of range");
  return array_[index];
}

void Json::set(const std::string& key, Json value) {
  OXMLC_CHECK(type_ == Type::kObject, "Json: set on non-object");
  for (auto& [k, v] : object_) {
    if (k == key) {
      v = std::move(value);
      return;
    }
  }
  object_.emplace_back(key, std::move(value));
}

bool Json::contains(const std::string& key) const {
  OXMLC_CHECK(type_ == Type::kObject, "Json: contains on non-object");
  for (const auto& [k, v] : object_) {
    if (k == key) return true;
  }
  return false;
}

const Json& Json::get(const std::string& key) const {
  OXMLC_CHECK(type_ == Type::kObject, "Json: get on non-object");
  for (const auto& [k, v] : object_) {
    if (k == key) return v;
  }
  throw InvalidArgumentError("Json: missing key: " + key);
}

const std::vector<std::pair<std::string, Json>>& Json::members() const {
  OXMLC_CHECK(type_ == Type::kObject, "Json: members on non-object");
  return object_;
}

void Json::dump_to(std::string& out, int indent, int depth) const {
  const auto newline = [&](int d) {
    if (indent <= 0) return;
    out.push_back('\n');
    out.append(static_cast<std::size_t>(indent * d), ' ');
  };
  switch (type_) {
    case Type::kNull: out += "null"; break;
    case Type::kBool: out += bool_ ? "true" : "false"; break;
    case Type::kNumber: append_number(out, number_); break;
    case Type::kString: append_escaped(out, string_); break;
    case Type::kArray: {
      out.push_back('[');
      for (std::size_t i = 0; i < array_.size(); ++i) {
        if (i > 0) out.push_back(',');
        newline(depth + 1);
        array_[i].dump_to(out, indent, depth + 1);
      }
      if (!array_.empty()) newline(depth);
      out.push_back(']');
      break;
    }
    case Type::kObject: {
      out.push_back('{');
      for (std::size_t i = 0; i < object_.size(); ++i) {
        if (i > 0) out.push_back(',');
        newline(depth + 1);
        append_escaped(out, object_[i].first);
        out.push_back(':');
        if (indent > 0) out.push_back(' ');
        object_[i].second.dump_to(out, indent, depth + 1);
      }
      if (!object_.empty()) newline(depth);
      out.push_back('}');
      break;
    }
  }
}

std::string Json::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  return out;
}

Json Json::parse(const std::string& text) { return Parser(text).run(); }

bool Json::operator==(const Json& other) const {
  if (type_ != other.type_) return false;
  switch (type_) {
    case Type::kNull: return true;
    case Type::kBool: return bool_ == other.bool_;
    case Type::kNumber: return number_ == other.number_;
    case Type::kString: return string_ == other.string_;
    case Type::kArray: return array_ == other.array_;
    case Type::kObject: return object_ == other.object_;
  }
  return false;
}

}  // namespace oxmlc::obs
