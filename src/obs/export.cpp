#include "obs/export.hpp"

#include <filesystem>
#include <fstream>
#include <sstream>

#include "util/error.hpp"

namespace oxmlc::obs {
namespace {

Json timer_to_json(const Timer::Snapshot& t) {
  Json obj = Json::object();
  obj.set("count", Json(static_cast<double>(t.count)));
  obj.set("total_ns", Json(static_cast<double>(t.total_ns)));
  obj.set("min_ns", Json(static_cast<double>(t.min_ns)));
  obj.set("max_ns", Json(static_cast<double>(t.max_ns)));
  return obj;
}

Json histogram_to_json(const Histogram::Snapshot& h) {
  Json obj = Json::object();
  obj.set("lo", Json(h.lo));
  obj.set("hi", Json(h.hi));
  obj.set("count", Json(static_cast<double>(h.count)));
  obj.set("sum", Json(h.sum));
  obj.set("min", Json(h.min));
  obj.set("max", Json(h.max));
  Json bins = Json::array();
  for (std::uint64_t b : h.bins) bins.push_back(Json(static_cast<double>(b)));
  obj.set("bins", std::move(bins));
  return obj;
}

std::uint64_t as_u64(const Json& j) { return static_cast<std::uint64_t>(j.as_number()); }

}  // namespace

Json to_json(const MetricsSnapshot& snapshot) {
  Json root = Json::object();
  root.set("schema", Json(kMetricsSchema));

  Json counters = Json::object();
  for (const auto& c : snapshot.counters) {
    counters.set(c.name, Json(static_cast<double>(c.value)));
  }
  root.set("counters", std::move(counters));

  Json gauges = Json::object();
  for (const auto& g : snapshot.gauges) gauges.set(g.name, Json(g.value));
  root.set("gauges", std::move(gauges));

  Json timers = Json::object();
  for (const auto& t : snapshot.timers) timers.set(t.name, timer_to_json(t.stats));
  root.set("timers", std::move(timers));

  Json histograms = Json::object();
  for (const auto& h : snapshot.histograms) {
    histograms.set(h.name, histogram_to_json(h.stats));
  }
  root.set("histograms", std::move(histograms));
  return root;
}

MetricsSnapshot snapshot_from_json(const Json& json) {
  OXMLC_CHECK(json.is_object(), "metrics json: root must be an object");
  OXMLC_CHECK(json.contains("schema") && json.get("schema").is_string() &&
                  json.get("schema").as_string() == kMetricsSchema,
              "metrics json: missing or unsupported schema tag");

  MetricsSnapshot snap;
  for (const auto& [name, value] : json.get("counters").members()) {
    snap.counters.push_back({name, as_u64(value)});
  }
  for (const auto& [name, value] : json.get("gauges").members()) {
    snap.gauges.push_back({name, value.as_number()});
  }
  for (const auto& [name, value] : json.get("timers").members()) {
    Timer::Snapshot t;
    t.count = as_u64(value.get("count"));
    t.total_ns = as_u64(value.get("total_ns"));
    t.min_ns = as_u64(value.get("min_ns"));
    t.max_ns = as_u64(value.get("max_ns"));
    snap.timers.push_back({name, t});
  }
  for (const auto& [name, value] : json.get("histograms").members()) {
    Histogram::Snapshot h;
    h.lo = value.get("lo").as_number();
    h.hi = value.get("hi").as_number();
    h.count = as_u64(value.get("count"));
    h.sum = value.get("sum").as_number();
    h.min = value.get("min").as_number();
    h.max = value.get("max").as_number();
    const Json& bins = value.get("bins");
    for (std::size_t i = 0; i < bins.size(); ++i) h.bins.push_back(as_u64(bins.at(i)));
    snap.histograms.push_back({name, h});
  }
  return snap;
}

std::string to_csv(const MetricsSnapshot& snapshot) {
  std::ostringstream out;
  out.precision(17);
  out << "kind,name,field,value\n";
  for (const auto& c : snapshot.counters) {
    out << "counter," << c.name << ",value," << c.value << "\n";
  }
  for (const auto& g : snapshot.gauges) {
    out << "gauge," << g.name << ",value," << g.value << "\n";
  }
  for (const auto& t : snapshot.timers) {
    out << "timer," << t.name << ",count," << t.stats.count << "\n";
    out << "timer," << t.name << ",total_ns," << t.stats.total_ns << "\n";
    out << "timer," << t.name << ",min_ns," << t.stats.min_ns << "\n";
    out << "timer," << t.name << ",max_ns," << t.stats.max_ns << "\n";
  }
  for (const auto& h : snapshot.histograms) {
    out << "histogram," << h.name << ",lo," << h.stats.lo << "\n";
    out << "histogram," << h.name << ",hi," << h.stats.hi << "\n";
    out << "histogram," << h.name << ",count," << h.stats.count << "\n";
    out << "histogram," << h.name << ",sum," << h.stats.sum << "\n";
    out << "histogram," << h.name << ",min," << h.stats.min << "\n";
    out << "histogram," << h.name << ",max," << h.stats.max << "\n";
    for (std::size_t i = 0; i < h.stats.bins.size(); ++i) {
      out << "histogram," << h.name << ",bin" << i << "," << h.stats.bins[i] << "\n";
    }
  }
  return out.str();
}

void write_file(const std::string& path, const std::string& text) {
  const std::filesystem::path p(path);
  if (p.has_parent_path()) {
    std::error_code ec;
    std::filesystem::create_directories(p.parent_path(), ec);
  }
  std::ofstream file(path, std::ios::trunc);
  OXMLC_CHECK(file.good(), "cannot open metrics output file: " + path);
  file << text;
  OXMLC_CHECK(file.good(), "failed writing metrics output file: " + path);
}

void write_metrics_json(const std::string& path, int indent) {
  write_file(path, to_json(registry().snapshot()).dump(indent) + "\n");
}

}  // namespace oxmlc::obs
