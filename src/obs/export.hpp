// Serialization of a MetricsSnapshot: JSON (structured, schema-tagged) and
// CSV (flat, one row per scalar — convenient for spreadsheet diffing), plus
// the inverse JSON reader used by tests and downstream tooling.
//
// JSON schema ("oxmlc.metrics.v1"):
//   {
//     "schema": "oxmlc.metrics.v1",
//     "counters":   { "<name>": <u64>, ... },
//     "gauges":     { "<name>": <double>, ... },
//     "timers":     { "<name>": {"count","total_ns","min_ns","max_ns"}, ... },
//     "histograms": { "<name>": {"lo","hi","count","sum","min","max",
//                                "bins":[u64,...]}, ... }
//   }
#pragma once

#include <string>

#include "obs/json.hpp"
#include "obs/registry.hpp"
#include "util/schema.hpp"

namespace oxmlc::obs {

inline constexpr const char* kMetricsSchema = util::kMetricsSchema;

Json to_json(const MetricsSnapshot& snapshot);

// Inverse of to_json. Throws InvalidArgumentError on a missing/mismatched
// schema tag or malformed sections.
MetricsSnapshot snapshot_from_json(const Json& json);

// Flat CSV: header "kind,name,field,value", one row per scalar field
// ("histogram bins" flatten to bin0..binN-1 rows). Lossless for counters,
// gauges and timers; histograms round-trip too since lo/hi/bins are emitted.
std::string to_csv(const MetricsSnapshot& snapshot);

// Writes `text` to `path`, creating parent directories. Throws IoError-style
// oxmlc::Error on failure.
void write_file(const std::string& path, const std::string& text);

// Convenience: snapshot the global registry and write JSON to `path`.
void write_metrics_json(const std::string& path, int indent = 2);

}  // namespace oxmlc::obs
