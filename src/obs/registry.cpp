#include "obs/registry.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace oxmlc::obs {

std::uint64_t MetricsSnapshot::counter(const std::string& name) const {
  for (const auto& c : counters) {
    if (c.name == name) return c.value;
  }
  throw InvalidArgumentError("MetricsSnapshot: no counter named " + name);
}

double MetricsSnapshot::gauge(const std::string& name) const {
  for (const auto& g : gauges) {
    if (g.name == name) return g.value;
  }
  throw InvalidArgumentError("MetricsSnapshot: no gauge named " + name);
}

const Timer::Snapshot& MetricsSnapshot::timer(const std::string& name) const {
  for (const auto& t : timers) {
    if (t.name == name) return t.stats;
  }
  throw InvalidArgumentError("MetricsSnapshot: no timer named " + name);
}

const Histogram::Snapshot& MetricsSnapshot::histogram(const std::string& name) const {
  for (const auto& h : histograms) {
    if (h.name == name) return h.stats;
  }
  throw InvalidArgumentError("MetricsSnapshot: no histogram named " + name);
}

bool MetricsSnapshot::has_counter(const std::string& name) const {
  return std::any_of(counters.begin(), counters.end(),
                     [&](const CounterSample& c) { return c.name == name; });
}

Registry::Entry& Registry::find_or_create(const std::string& name, Kind kind, double lo,
                                          double hi, std::size_t bins) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& entry : entries_) {
    if (entry->name != name) continue;
    OXMLC_CHECK(entry->kind == kind,
                "Registry: metric '" + name + "' already exists with another kind");
    return *entry;
  }
  auto entry = std::make_unique<Entry>();
  entry->name = name;
  entry->kind = kind;
  switch (kind) {
    case Kind::kCounter: entry->counter = std::make_unique<Counter>(); break;
    case Kind::kGauge: entry->gauge = std::make_unique<Gauge>(); break;
    case Kind::kTimer: entry->timer = std::make_unique<Timer>(); break;
    case Kind::kHistogram:
      entry->histogram = std::make_unique<Histogram>(lo, hi, bins);
      break;
  }
  entries_.push_back(std::move(entry));
  return *entries_.back();
}

Counter& Registry::counter(const std::string& name) {
  return *find_or_create(name, Kind::kCounter, 0, 0, 0).counter;
}

Gauge& Registry::gauge(const std::string& name) {
  return *find_or_create(name, Kind::kGauge, 0, 0, 0).gauge;
}

Timer& Registry::timer(const std::string& name) {
  return *find_or_create(name, Kind::kTimer, 0, 0, 0).timer;
}

Counter& Registry::counter(const char* prefix, std::size_t index, const char* suffix) {
  return counter(prefix + std::to_string(index) + suffix);
}

Gauge& Registry::gauge(const char* prefix, std::size_t index, const char* suffix) {
  return gauge(prefix + std::to_string(index) + suffix);
}

Timer& Registry::timer(const char* prefix, std::size_t index, const char* suffix) {
  return timer(prefix + std::to_string(index) + suffix);
}

Histogram& Registry::histogram(const std::string& name, double lo, double hi,
                               std::size_t bins) {
  return *find_or_create(name, Kind::kHistogram, lo, hi, bins).histogram;
}

MetricsSnapshot Registry::snapshot() const {
  MetricsSnapshot snap;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& entry : entries_) {
      switch (entry->kind) {
        case Kind::kCounter:
          snap.counters.push_back({entry->name, entry->counter->value()});
          break;
        case Kind::kGauge:
          snap.gauges.push_back({entry->name, entry->gauge->value()});
          break;
        case Kind::kTimer:
          snap.timers.push_back({entry->name, entry->timer->snapshot()});
          break;
        case Kind::kHistogram:
          snap.histograms.push_back({entry->name, entry->histogram->snapshot()});
          break;
      }
    }
  }
  const auto by_name = [](const auto& a, const auto& b) { return a.name < b.name; };
  std::sort(snap.counters.begin(), snap.counters.end(), by_name);
  std::sort(snap.gauges.begin(), snap.gauges.end(), by_name);
  std::sort(snap.timers.begin(), snap.timers.end(), by_name);
  std::sort(snap.histograms.begin(), snap.histograms.end(), by_name);
  return snap;
}

void Registry::reset_values() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& entry : entries_) {
    switch (entry->kind) {
      case Kind::kCounter: entry->counter->reset(); break;
      case Kind::kGauge: entry->gauge->reset(); break;
      case Kind::kTimer: entry->timer->reset(); break;
      case Kind::kHistogram: entry->histogram->reset(); break;
    }
  }
}

std::size_t Registry::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

Registry& registry() {
  static Registry* global = new Registry();  // leaked: see header
  return *global;
}

}  // namespace oxmlc::obs
