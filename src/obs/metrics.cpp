#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/error.hpp"

namespace oxmlc::obs {
namespace {

std::atomic<bool> g_enabled{true};

void atomic_add_double(std::atomic<double>& target, double delta) {
  double expected = target.load(std::memory_order_relaxed);
  while (!target.compare_exchange_weak(expected, expected + delta,
                                       std::memory_order_relaxed)) {
  }
}

void atomic_min_double(std::atomic<double>& target, double value) {
  double expected = target.load(std::memory_order_relaxed);
  while (value < expected && !target.compare_exchange_weak(expected, value,
                                                           std::memory_order_relaxed)) {
  }
}

void atomic_max_double(std::atomic<double>& target, double value) {
  double expected = target.load(std::memory_order_relaxed);
  while (value > expected && !target.compare_exchange_weak(expected, value,
                                                           std::memory_order_relaxed)) {
  }
}

void atomic_min_u64(std::atomic<std::uint64_t>& target, std::uint64_t value) {
  std::uint64_t expected = target.load(std::memory_order_relaxed);
  while (value < expected && !target.compare_exchange_weak(expected, value,
                                                           std::memory_order_relaxed)) {
  }
}

void atomic_max_u64(std::atomic<std::uint64_t>& target, std::uint64_t value) {
  std::uint64_t expected = target.load(std::memory_order_relaxed);
  while (value > expected && !target.compare_exchange_weak(expected, value,
                                                           std::memory_order_relaxed)) {
  }
}

}  // namespace

bool enabled() { return g_enabled.load(std::memory_order_relaxed); }

void set_enabled(bool on) { g_enabled.store(on, std::memory_order_relaxed); }

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi),
      inv_width_(static_cast<double>(bins) / (hi - lo)),
      min_(std::numeric_limits<double>::infinity()),
      max_(-std::numeric_limits<double>::infinity()),
      bins_(bins) {
  OXMLC_CHECK(hi > lo, "Histogram: hi must exceed lo");
  OXMLC_CHECK(bins >= 1, "Histogram: need at least one bin");
}

void Histogram::observe(double value) {
  if (!enabled() || std::isnan(value)) return;
  count_.fetch_add(1, std::memory_order_relaxed);
  atomic_add_double(sum_, value);
  atomic_min_double(min_, value);
  atomic_max_double(max_, value);
  const double pos = (value - lo_) * inv_width_;
  std::size_t bin = 0;
  if (pos >= static_cast<double>(bins_.size())) {
    bin = bins_.size() - 1;
  } else if (pos > 0.0) {
    bin = static_cast<std::size_t>(pos);
  }
  bins_[bin].fetch_add(1, std::memory_order_relaxed);
}

Histogram::Snapshot Histogram::snapshot() const {
  Snapshot snap;
  snap.lo = lo_;
  snap.hi = hi_;
  snap.count = count_.load(std::memory_order_relaxed);
  snap.sum = sum_.load(std::memory_order_relaxed);
  snap.min = snap.count ? min_.load(std::memory_order_relaxed) : 0.0;
  snap.max = snap.count ? max_.load(std::memory_order_relaxed) : 0.0;
  snap.bins.reserve(bins_.size());
  for (const auto& bin : bins_) snap.bins.push_back(bin.load(std::memory_order_relaxed));
  return snap;
}

void Histogram::reset() {
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  min_.store(std::numeric_limits<double>::infinity(), std::memory_order_relaxed);
  max_.store(-std::numeric_limits<double>::infinity(), std::memory_order_relaxed);
  for (auto& bin : bins_) bin.store(0, std::memory_order_relaxed);
}

void Timer::record_ns(std::uint64_t ns) {
  if (!enabled()) return;
  count_.fetch_add(1, std::memory_order_relaxed);
  total_ns_.fetch_add(ns, std::memory_order_relaxed);
  atomic_min_u64(min_ns_, ns);
  atomic_max_u64(max_ns_, ns);
}

Timer::Snapshot Timer::snapshot() const {
  Snapshot snap;
  snap.count = count_.load(std::memory_order_relaxed);
  snap.total_ns = total_ns_.load(std::memory_order_relaxed);
  snap.min_ns = snap.count ? min_ns_.load(std::memory_order_relaxed) : 0;
  snap.max_ns = max_ns_.load(std::memory_order_relaxed);
  return snap;
}

void Timer::reset() {
  count_.store(0, std::memory_order_relaxed);
  total_ns_.store(0, std::memory_order_relaxed);
  min_ns_.store(~0ull, std::memory_order_relaxed);
  max_ns_.store(0, std::memory_order_relaxed);
}

}  // namespace oxmlc::obs
