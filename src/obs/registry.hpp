// Named-metric registry: the aggregation point of one run's telemetry.
//
// Call sites obtain a metric once and cache the reference:
//
//   static obs::Counter& iters = obs::registry().counter("newton.iterations");
//   iters.add(result.iterations);
//
// The registry never deletes or moves a metric, so cached references stay
// valid for the process lifetime; reset_values() zeroes every metric in place
// between runs (e.g. per Monte-Carlo study) without invalidating them.
//
// Naming convention: dot-separated lowercase paths, subsystem first —
// "newton.iterations", "transient.steps.accepted", "mlc.program.level3.pulses".
#pragma once

#include <cstddef>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/metrics.hpp"

namespace oxmlc::obs {

// Value-type snapshot of a whole registry, ordered by metric name. This is
// what the exporters serialize and the tests compare.
struct MetricsSnapshot {
  struct CounterSample {
    std::string name;
    std::uint64_t value = 0;
    bool operator==(const CounterSample&) const = default;
  };
  struct GaugeSample {
    std::string name;
    double value = 0.0;
    bool operator==(const GaugeSample&) const = default;
  };
  struct TimerSample {
    std::string name;
    Timer::Snapshot stats;
    bool operator==(const TimerSample& other) const {
      return name == other.name && stats.count == other.stats.count &&
             stats.total_ns == other.stats.total_ns &&
             stats.min_ns == other.stats.min_ns && stats.max_ns == other.stats.max_ns;
    }
  };
  struct HistogramSample {
    std::string name;
    Histogram::Snapshot stats;
    bool operator==(const HistogramSample& other) const {
      return name == other.name && stats.lo == other.stats.lo &&
             stats.hi == other.stats.hi && stats.count == other.stats.count &&
             stats.sum == other.stats.sum && stats.min == other.stats.min &&
             stats.max == other.stats.max && stats.bins == other.stats.bins;
    }
  };

  std::vector<CounterSample> counters;
  std::vector<GaugeSample> gauges;
  std::vector<TimerSample> timers;
  std::vector<HistogramSample> histograms;

  bool operator==(const MetricsSnapshot&) const = default;

  // Lookup helpers (0 / empty-handed on a missing name would hide typos, so
  // these throw InvalidArgumentError instead).
  std::uint64_t counter(const std::string& name) const;
  double gauge(const std::string& name) const;
  const Timer::Snapshot& timer(const std::string& name) const;
  const Histogram::Snapshot& histogram(const std::string& name) const;
  bool has_counter(const std::string& name) const;
};

class Registry {
 public:
  // Find-or-create by name. A name is bound to its first-created kind;
  // re-requesting it as a different kind throws InvalidArgumentError.
  // For histograms the (lo, hi, bins) shape is fixed at first creation;
  // later calls with different bounds return the existing instance.
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Timer& timer(const std::string& name);
  Histogram& histogram(const std::string& name, double lo, double hi,
                       std::size_t bins);

  // Indexed metric families: "<prefix><index><suffix>", e.g.
  // counter("mlc.program.level", 3, ".pulses"). This is the one sanctioned
  // way to build a metric name at runtime — the grep-ability contract (and
  // the oxmlc-metrics-literal static check) requires every other call site
  // to pass a string literal, so the full name or the family stem is always
  // searchable in the source.
  Counter& counter(const char* prefix, std::size_t index, const char* suffix);
  Gauge& gauge(const char* prefix, std::size_t index, const char* suffix);
  Timer& timer(const char* prefix, std::size_t index, const char* suffix);

  MetricsSnapshot snapshot() const;

  // Zeroes every metric in place; references handed out remain valid.
  void reset_values();

  std::size_t size() const;

 private:
  enum class Kind { kCounter, kGauge, kTimer, kHistogram };
  struct Entry {
    std::string name;
    Kind kind;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Timer> timer;
    std::unique_ptr<Histogram> histogram;
  };

  Entry& find_or_create(const std::string& name, Kind kind, double lo, double hi,
                        std::size_t bins);

  mutable std::mutex mutex_;
  std::vector<std::unique_ptr<Entry>> entries_;  // insertion order
};

// Process-global registry used by all built-in instrumentation. Never
// destroyed (intentionally leaked) so metrics recorded from static-teardown
// paths stay safe.
Registry& registry();

}  // namespace oxmlc::obs
