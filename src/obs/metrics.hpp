// Lock-free metric primitives for the observability layer.
//
// Design constraints (the solver hot loops call these per Newton iteration):
//   * recording is wait-free — relaxed atomic adds, CAS only for min/max;
//   * a single global enable flag gates every record path, so a disabled
//     build costs one relaxed atomic load per call site;
//   * metrics never move once created (the Registry hands out stable
//     references that call sites cache in function-local statics).
//
// Thread model: concurrent record() from any number of threads is safe.
// snapshot reads are racy-but-consistent-per-field (each field is a single
// atomic); reset() concurrent with record() may lose a sample, which is fine
// for telemetry. Exact aggregation happens between runs, not during.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace oxmlc::obs {

// Global record gate. Default: enabled (the overhead is a few relaxed atomic
// ops per solver iteration, invisible next to an LU factorization); tools that
// need the last nanoseconds call set_enabled(false).
bool enabled();
void set_enabled(bool on);

// Monotonic event count.
class Counter {
 public:
  void add(std::uint64_t n = 1) {
    if (enabled()) value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

// Last-written scalar (thread count, configuration echoes, derived rates).
class Gauge {
 public:
  void set(double v) {
    if (enabled()) value_.store(v, std::memory_order_relaxed);
  }
  double value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

// Streaming summary of an observed distribution: count/sum/min/max plus
// fixed-width bins over [lo, hi) (out-of-range samples clamp to the edge
// bins). Snapshot quantiles come from the bins; exact moments from sum/count.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void observe(double value);

  struct Snapshot {
    double lo = 0.0;
    double hi = 0.0;
    std::uint64_t count = 0;
    double sum = 0.0;
    double min = 0.0;  // 0 when empty
    double max = 0.0;
    std::vector<std::uint64_t> bins;

    double mean() const { return count ? sum / static_cast<double>(count) : 0.0; }
  };
  Snapshot snapshot() const;
  void reset();

  double lo() const { return lo_; }
  double hi() const { return hi_; }
  std::size_t bin_count() const { return bins_.size(); }

 private:
  double lo_;
  double hi_;
  double inv_width_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_;
  std::atomic<double> max_;
  std::vector<std::atomic<std::uint64_t>> bins_;
};

// Accumulated wall time of a code region: count + total/min/max nanoseconds.
class Timer {
 public:
  void record_ns(std::uint64_t ns);

  struct Snapshot {
    std::uint64_t count = 0;
    std::uint64_t total_ns = 0;
    std::uint64_t min_ns = 0;  // 0 when empty
    std::uint64_t max_ns = 0;

    double total_seconds() const { return static_cast<double>(total_ns) * 1e-9; }
    double mean_seconds() const {
      return count ? total_seconds() / static_cast<double>(count) : 0.0;
    }
  };
  Snapshot snapshot() const;
  void reset();

 private:
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> total_ns_{0};
  std::atomic<std::uint64_t> min_ns_{~0ull};
  std::atomic<std::uint64_t> max_ns_{0};
};

// RAII region timer. Reads the clock only when recording is enabled at
// construction; a disabled scope is two branches and no clock calls.
class ScopedTimer {
 public:
  explicit ScopedTimer(Timer& timer)
      : timer_(enabled() ? &timer : nullptr),
        start_(timer_ ? std::chrono::steady_clock::now()
                      : std::chrono::steady_clock::time_point{}) {}
  ~ScopedTimer() { stop(); }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  // Ends the region early (idempotent).
  void stop() {
    if (timer_ == nullptr) return;
    const auto elapsed = std::chrono::steady_clock::now() - start_;
    timer_->record_ns(static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed).count()));
    timer_ = nullptr;
  }

 private:
  Timer* timer_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace oxmlc::obs
