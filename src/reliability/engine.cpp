#include "reliability/engine.hpp"

#include <algorithm>
#include <cmath>

#include "obs/registry.hpp"
#include "oxram/model.hpp"
#include "util/error.hpp"

namespace oxmlc::reliability {
namespace {

struct ReliabilityMetrics {
  obs::Counter& advances = obs::registry().counter("reliability.advances");
  obs::Counter& lanes_advanced = obs::registry().counter("reliability.lanes_advanced");
  obs::Counter& reads_disturbed = obs::registry().counter("reliability.reads_disturbed");
  obs::Counter& program_events = obs::registry().counter("reliability.program_events");
  obs::Timer& advance_time = obs::registry().timer("reliability.advance_time");

  static ReliabilityMetrics& get() {
    static ReliabilityMetrics metrics;
    return metrics;
  }
};

// Per-cell amplitude stream: same construction style as FastArray's
// position-derived streams — deterministic given (seed, cell index),
// independent of access order.
Rng cell_stream(std::uint64_t seed, std::size_t cell_index) {
  return Rng(seed ^ (0x9E3779B97F4A7C15ULL * (static_cast<std::uint64_t>(cell_index) + 1)));
}

}  // namespace

oxram::OxramParams worn_params(const oxram::OxramParams& fresh, const EnduranceModel& model,
                               std::uint64_t cycles) {
  if (!model.enabled || static_cast<double>(cycles) <= model.onset_cycles) {
    return fresh;
  }
  const double decades = std::log10(static_cast<double>(cycles) / model.onset_cycles);
  const double loss = std::min(model.max_window_loss, model.loss_per_decade * decades);
  const double window = fresh.g_max - fresh.g_min;
  oxram::OxramParams worn = fresh;
  worn.g_min = fresh.g_min + 0.5 * loss * window;
  worn.g_max = fresh.g_max - 0.5 * loss * window;
  return worn;
}

ReliabilityEngine::ReliabilityEngine(array::FastArray& array, ReliabilityConfig config)
    : array_(array), config_(config) {
  const std::size_t n = array_.size();
  anchor_gap_.resize(n);
  g_min_.resize(n);
  t_elapsed_.assign(n, 0.0);
  relax_amp_.assign(n, 0.0);
  drift_amp_.assign(n, 0.0);
  disturb_offset_.assign(n, 0.0);
  cycles_.assign(n, 0);
  reads_.assign(n, 0);
  programmed_.assign(n, 0);
  fresh_params_.reserve(n);
  rngs_.reserve(n);
  scratch_.resize(n);
  for (std::size_t row = 0; row < array_.rows(); ++row) {
    for (std::size_t col = 0; col < array_.cols(); ++col) {
      const std::size_t i = index(row, col);
      const oxram::FastCell& cell = array_.at(row, col);
      anchor_gap_[i] = cell.gap();
      g_min_[i] = cell.params().g_min;
      fresh_params_.push_back(cell.params());
      rngs_.push_back(cell_stream(config_.seed, i));
    }
  }
}

std::size_t ReliabilityEngine::index(std::size_t row, std::size_t col) const {
  OXMLC_CHECK(row < array_.rows() && col < array_.cols(),
              "ReliabilityEngine: cell index out of range");
  return row * array_.cols() + col;
}

void ReliabilityEngine::on_programmed(std::size_t row, std::size_t col) {
  const std::size_t i = index(row, col);
  oxram::FastCell& cell = array_.at(row, col);
  if (!programmed_[i]) {
    // First program event of this cell: draw its slow-drift activation (the
    // per-device D2D quantity) before the first per-event amplitude.
    drift_amp_[i] = oxram::sample_drift_amplitude(config_.drift, rngs_[i]);
    programmed_[i] = 1;
  }
  relax_amp_[i] = oxram::sample_relaxation_amplitude(config_.drift, rngs_[i]);
  anchor_gap_[i] = cell.gap();
  t_elapsed_[i] = 0.0;
  disturb_offset_[i] = 0.0;
  ++cycles_[i];
  if (config_.endurance.enabled) {
    const oxram::OxramParams worn = worn_params(fresh_params_[i], config_.endurance, cycles_[i]);
    cell.mutable_params() = worn;
    g_min_[i] = worn.g_min;
  }
  ReliabilityMetrics::get().program_events.add();
}

void ReliabilityEngine::on_read(std::size_t row, std::size_t col, double v_read, double v_wl) {
  apply_reads(row, col, 1, v_read, v_wl);
}

void ReliabilityEngine::apply_reads(std::size_t row, std::size_t col, std::size_t n,
                                    double v_read, double v_wl) {
  const std::size_t i = index(row, col);
  reads_[i] += n;
  if (!config_.read_disturb.enabled || n == 0) {
    return;
  }
  oxram::FastCell& cell = array_.at(row, col);
  // The sense biases the cell in the SET polarity (BL positive), so the
  // disturb reduces the gap; at 0.3 V the bias-driven rate is many orders
  // below the programming rate, which is precisely why reads are cheap —
  // but 1e6+ reads or an accelerated stress budget add up. Only the excess
  // over the zero-bias trajectory is billed to the read: the compact model's
  // accelerated barriers produce a small V = 0 drift (a time-scale artifact,
  // see bench_ext_read_disturb/DESIGN.md) that is not the read's fault.
  const oxram::StackOperatingPoint op =
      oxram::solve_stack(cell.params(), cell.gap(), cell.stack(), oxram::Polarity::kSet,
                         v_read, v_wl);
  const double stress = static_cast<double>(n) * config_.read_disturb.t_read *
                        config_.read_disturb.accel;
  const double g_before = cell.gap();
  const double g_bias = oxram::advance_gap(cell.params(), op.v_cell, g_before,
                                           cell.virgin(), stress, cell.rate_factor());
  const double g_rest = oxram::advance_gap(cell.params(), 0.0, g_before, cell.virgin(),
                                           stress, cell.rate_factor());
  const double g_after = std::clamp(g_before + (g_bias - g_rest), cell.params().g_min,
                                    cell.params().g_max);
  disturb_offset_[i] += g_after - g_before;
  cell.set_gap(g_after);
  ReliabilityMetrics::get().reads_disturbed.add(n);
}

void ReliabilityEngine::advance(double dt) {
  OXMLC_CHECK(dt >= 0.0, "ReliabilityEngine::advance: dt must be non-negative");
  ReliabilityMetrics& metrics = ReliabilityMetrics::get();
  metrics.advances.add();
  obs::ScopedTimer timer(metrics.advance_time);

  const std::size_t n = array_.size();
  for (std::size_t i = 0; i < n; ++i) {
    t_elapsed_[i] += dt;
  }
  oxram::drifted_gap_batch(config_.drift, anchor_gap_, g_min_, relax_amp_, drift_amp_,
                           t_elapsed_, scratch_);
  std::size_t advanced = 0;
  for (std::size_t row = 0; row < array_.rows(); ++row) {
    for (std::size_t col = 0; col < array_.cols(); ++col) {
      const std::size_t i = row * array_.cols() + col;
      if (!programmed_[i]) {
        continue;  // as-fabricated state is stationary; nothing to rewrite
      }
      oxram::FastCell& cell = array_.at(row, col);
      const double g = std::clamp(scratch_[i] + disturb_offset_[i], g_min_[i],
                                  cell.params().g_max);
      cell.set_gap(g);
      ++advanced;
    }
  }
  metrics.lanes_advanced.add(advanced);
}

double ReliabilityEngine::scalar_reference_gap(std::size_t row, std::size_t col,
                                               double t_since_anchor) const {
  const std::size_t i = index(row, col);
  const double g = oxram::drifted_gap(config_.drift, anchor_gap_[i], g_min_[i], relax_amp_[i],
                                      drift_amp_[i], t_since_anchor);
  return std::clamp(g + disturb_offset_[i], g_min_[i], array_.at(row, col).params().g_max);
}

bool ReliabilityEngine::programmed(std::size_t row, std::size_t col) const {
  return programmed_[index(row, col)] != 0;
}
double ReliabilityEngine::anchor_gap(std::size_t row, std::size_t col) const {
  return anchor_gap_[index(row, col)];
}
double ReliabilityEngine::elapsed_since_anchor(std::size_t row, std::size_t col) const {
  return t_elapsed_[index(row, col)];
}
double ReliabilityEngine::relax_amplitude(std::size_t row, std::size_t col) const {
  return relax_amp_[index(row, col)];
}
double ReliabilityEngine::drift_amplitude(std::size_t row, std::size_t col) const {
  return drift_amp_[index(row, col)];
}
double ReliabilityEngine::disturb_offset(std::size_t row, std::size_t col) const {
  return disturb_offset_[index(row, col)];
}
std::uint64_t ReliabilityEngine::cycles(std::size_t row, std::size_t col) const {
  return cycles_[index(row, col)];
}
std::uint64_t ReliabilityEngine::reads(std::size_t row, std::size_t col) const {
  return reads_[index(row, col)];
}

}  // namespace oxmlc::reliability
