// Reliability engine: time-dependent state evolution of a whole FastArray.
//
// The write path freezes each cell's gap the instant its termination
// comparator fires; this subsystem owns everything that happens to that state
// afterwards:
//
//   * retention/relaxation drift — the two-component log-time law of
//     oxram/drift.hpp, advanced for the whole array through the batched SoA
//     kernel (advance());
//   * read disturb — every sense operation biases the cell at the read
//     voltage in the SET polarity, nudging the gap toward LRS by the physics
//     rate integrated over the sense duration (on_read() / apply_reads());
//   * endurance — cycle counts per cell compress the switching window
//     (g_min up, g_max down) log-linearly past an onset (EnduranceModel).
//
// The engine hangs off an existing array::FastArray and observes program
// events via on_programmed(): the cell's current gap becomes the drift
// anchor, a fresh per-event relaxation amplitude is drawn, wear is applied.
// All stochastic amplitudes come from per-cell generators derived from
// (config.seed, cell index) — deterministic regardless of access order, the
// same contract as FastArray's variability streams.
//
// MemoryController::attach_reliability() wires program/read notifications
// automatically and adds the relaxation-aware verify and scrub policies on
// top (see mlc/controller.hpp). Cells mutated outside the engine's view
// (manual set_gap) must be re-anchored with on_programmed() or the next
// advance() will overwrite the manual state.
//
// Telemetry: reliability.* counters/timers in the oxmlc.metrics.v1 registry
// (advances, lanes_advanced, reads_disturbed, program_events, advance_time).
#pragma once

#include <cstdint>
#include <vector>

#include "array/fast_array.hpp"
#include "oxram/drift.hpp"
#include "util/rng.hpp"

namespace oxmlc::reliability {

// Read disturb: one sense holds v_read across the stack for t_read. The
// resulting gap reduction per read is tiny at nominal 0.3 V (that is the
// point of a low read voltage); `accel` scales the effective stress time for
// disturb-margin studies (equivalent to raising read count per notification).
struct ReadDisturbModel {
  bool enabled = true;
  double t_read = 100e-9;  // s, one sense operation
  double accel = 1.0;      // stress-time multiplier
};

// Endurance: window compression past an onset cycle count. The fractional
// loss per decade is split between the two window edges,
//   loss = min(max_window_loss, loss_per_decade * log10(cycles / onset)),
// raising g_min by loss/2 * window and lowering g_max symmetrically — the
// classic tail-bit signature where cycled cells can no longer reach the
// deepest HRS levels nor the strongest LRS.
struct EnduranceModel {
  bool enabled = true;
  double onset_cycles = 1e5;
  double loss_per_decade = 0.05;  // fraction of the fresh window per decade
  double max_window_loss = 0.5;
};

// The window compression applied to `fresh` after `cycles` program events.
oxram::OxramParams worn_params(const oxram::OxramParams& fresh, const EnduranceModel& model,
                               std::uint64_t cycles);

struct ReliabilityConfig {
  oxram::DriftParams drift;
  ReadDisturbModel read_disturb;
  EnduranceModel endurance;
  std::uint64_t seed = 0x5EED5EEDULL;
};

class ReliabilityEngine {
 public:
  // Binds to `array` for the array's lifetime; the engine stores no cell
  // physics of its own, only the evolution state (anchor gap, amplitudes,
  // elapsed time, disturb offset, cycle/read counts) per cell.
  ReliabilityEngine(array::FastArray& array, ReliabilityConfig config);

  const ReliabilityConfig& config() const { return config_; }
  array::FastArray& array() { return array_; }

  // Program-event notification: re-anchors the drift trajectory at the
  // cell's just-programmed gap, draws a fresh fast-relaxation amplitude
  // (first call also draws the cell's slow-drift activation), bumps the
  // cycle count and applies endurance wear to the cell's parameters.
  void on_programmed(std::size_t row, std::size_t col);

  // Read-disturb notification: integrates the gap ODE at the solved cell
  // voltage of one sense (n senses for apply_reads) and folds the result
  // into the cell state immediately.
  void on_read(std::size_t row, std::size_t col, double v_read = 0.3, double v_wl = 2.5);
  void apply_reads(std::size_t row, std::size_t col, std::size_t n, double v_read = 0.3,
                   double v_wl = 2.5);

  // Advances wall-clock time by dt for every cell and rewrites each
  // programmed cell's gap from its drift trajectory (batched kernel) plus
  // its accumulated disturb offset. Never-programmed cells are untouched.
  void advance(double dt);

  // Scalar reference for the state advance() writes into cell (row, col) at
  // `t_since_anchor` seconds after its last program event — drifted_gap()
  // plus the disturb offset, clamped to the cell's window. The batch-vs-
  // scalar acceptance test pins advance() against this at 1e-9 relative.
  double scalar_reference_gap(std::size_t row, std::size_t col, double t_since_anchor) const;

  // Per-cell evolution state, exposed for tests and analysis tooling.
  bool programmed(std::size_t row, std::size_t col) const;
  double anchor_gap(std::size_t row, std::size_t col) const;
  double elapsed_since_anchor(std::size_t row, std::size_t col) const;
  double relax_amplitude(std::size_t row, std::size_t col) const;
  double drift_amplitude(std::size_t row, std::size_t col) const;
  double disturb_offset(std::size_t row, std::size_t col) const;
  std::uint64_t cycles(std::size_t row, std::size_t col) const;
  std::uint64_t reads(std::size_t row, std::size_t col) const;

 private:
  std::size_t index(std::size_t row, std::size_t col) const;

  array::FastArray& array_;
  ReliabilityConfig config_;

  // SoA evolution state, one lane per cell (row-major, matching FastArray).
  std::vector<double> anchor_gap_;
  std::vector<double> g_min_;        // per-cell LRS floor, tracks wear
  std::vector<double> t_elapsed_;    // s since the cell's last anchor event
  std::vector<double> relax_amp_;    // per-event fast amplitude (0 until programmed)
  std::vector<double> drift_amp_;    // per-cell slow amplitude (0 until programmed)
  std::vector<double> disturb_offset_;  // accumulated read-disturb gap shift (<= 0)
  std::vector<std::uint64_t> cycles_;
  std::vector<std::uint64_t> reads_;
  std::vector<std::uint8_t> programmed_;
  std::vector<oxram::OxramParams> fresh_params_;  // pre-wear D2D parameters
  std::vector<Rng> rngs_;            // per-cell amplitude streams
  std::vector<double> scratch_;      // batch kernel output
};

}  // namespace oxmlc::reliability
