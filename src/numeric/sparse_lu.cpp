#include "numeric/sparse_lu.hpp"

#include <algorithm>
#include <cmath>
#include <string>

#include "numeric/linear_error.hpp"
#include "numeric/schur_lu.hpp"
#include "obs/registry.hpp"
#include "util/error.hpp"

namespace oxmlc::num {
namespace {

struct Entry {
  std::size_t col;
  double value;
};

// Hot-path telemetry for the cached factorization path.
struct SparseLuMetrics {
  obs::Counter& pattern_hits = obs::registry().counter("sparse_lu.pattern_hits");
  obs::Counter& pattern_misses = obs::registry().counter("sparse_lu.pattern_misses");
  obs::Counter& fallbacks = obs::registry().counter("sparse_lu.refactorize_fallbacks");

  static SparseLuMetrics& get() {
    static SparseLuMetrics metrics;
    return metrics;
  }
};

}  // namespace

void SparseLu::factorize(const CsrMatrix& a, double pivot_tol) {
  n_ = a.size();
  perm_.resize(n_);

  // Per-row factor output, flattened after elimination.
  std::vector<std::vector<Entry>> lower(n_);
  std::vector<std::vector<Entry>> upper(n_);

  // Working rows: sorted (col, value) vectors, mutated during elimination.
  std::vector<std::vector<Entry>> rows(n_);
  {
    const auto offsets = a.row_offsets();
    const auto cols = a.col_indices();
    const auto vals = a.values();
    for (std::size_t r = 0; r < n_; ++r) {
      rows[r].reserve(offsets[r + 1] - offsets[r]);
      for (std::size_t k = offsets[r]; k < offsets[r + 1]; ++k) {
        rows[r].push_back({cols[k], vals[k]});
      }
    }
  }

  // row_order[i] = index into `rows` of the row currently in position i.
  std::vector<std::size_t> row_order(n_);
  for (std::size_t i = 0; i < n_; ++i) row_order[i] = i;

  // Dense scatter buffer for row updates.
  std::vector<double> work(n_, 0.0);
  std::vector<bool> occupied(n_, false);
  std::vector<std::size_t> touched;
  touched.reserve(64);

  auto leading_value = [&](std::size_t physical_row, std::size_t col) -> double {
    const auto& row = rows[physical_row];
    const auto it = std::lower_bound(
        row.begin(), row.end(), col,
        [](const Entry& e, std::size_t c) { return e.col < c; });
    return (it != row.end() && it->col == col) ? it->value : 0.0;
  };

  for (std::size_t k = 0; k < n_; ++k) {
    // Partial pivoting among remaining rows.
    std::size_t best = k;
    double best_mag = std::fabs(leading_value(row_order[k], k));
    for (std::size_t i = k + 1; i < n_; ++i) {
      const double mag = std::fabs(leading_value(row_order[i], k));
      if (mag > best_mag) {
        best_mag = mag;
        best = i;
      }
    }
    if (best_mag < pivot_tol) {
      throw SingularMatrixError(
          "SparseLu: numerically singular matrix at column " + std::to_string(k), k);
    }
    std::swap(row_order[k], row_order[best]);
    const std::size_t pivot_physical = row_order[k];
    const double pivot = leading_value(pivot_physical, k);

    // Move the pivot row's entries (col >= k) into U.
    auto& prow = rows[pivot_physical];
    for (const Entry& e : prow) {
      if (e.col >= k) upper[k].push_back(e);
    }

    // Eliminate column k from all remaining rows that contain it.
    for (std::size_t i = k + 1; i < n_; ++i) {
      const std::size_t r = row_order[i];
      const double a_rk = leading_value(r, k);
      if (a_rk == 0.0) continue;
      const double factor = a_rk / pivot;
      lower[i].push_back({k, factor});

      // Scatter row r (cols > k) into the work buffer...
      touched.clear();
      for (const Entry& e : rows[r]) {
        if (e.col <= k) continue;
        work[e.col] = e.value;
        occupied[e.col] = true;
        touched.push_back(e.col);
      }
      // ...subtract factor * pivot row...
      for (const Entry& e : upper[k]) {
        if (e.col == k) continue;
        if (!occupied[e.col]) {
          occupied[e.col] = true;
          work[e.col] = 0.0;
          touched.push_back(e.col);
        }
        work[e.col] -= factor * e.value;
      }
      // ...and gather back sorted.
      std::sort(touched.begin(), touched.end());
      auto& row = rows[r];
      row.clear();
      for (std::size_t col : touched) {
        if (work[col] != 0.0) row.push_back({col, work[col]});
        occupied[col] = false;
      }
    }
    rows[pivot_physical].clear();
    rows[pivot_physical].shrink_to_fit();
  }

  perm_ = row_order;

  // Flatten the factors (L rows carry ascending elimination columns by
  // construction; U rows are sorted with the diagonal first).
  l_offsets_.assign(n_ + 1, 0);
  u_offsets_.assign(n_ + 1, 0);
  l_cols_.clear();
  l_values_.clear();
  u_cols_.clear();
  u_values_.clear();
  u_diag_.assign(n_, 0.0);
  for (std::size_t i = 0; i < n_; ++i) {
    l_offsets_[i] = l_cols_.size();
    for (const Entry& e : lower[i]) {
      l_cols_.push_back(e.col);
      l_values_.push_back(e.value);
    }
    u_offsets_[i] = u_cols_.size();
    for (const Entry& e : upper[i]) {
      u_cols_.push_back(e.col);
      u_values_.push_back(e.value);
    }
    u_diag_[i] = upper[i].front().value;
  }
  l_offsets_[n_] = l_cols_.size();
  u_offsets_[n_] = u_cols_.size();

  // Freeze the input pattern as the refactorize() key. The numeric fill
  // pattern flattened above may omit entries a different-valued matrix would
  // produce (exact cancellations), so the structural pattern is re-derived by
  // analyze() on the first refactorize.
  a_offsets_.assign(a.row_offsets().begin(), a.row_offsets().end());
  a_cols_.assign(a.col_indices().begin(), a.col_indices().end());
  analyzed_ = false;
}

bool SparseLu::pattern_matches(const CsrMatrix& a) const {
  return a.size() == n_ &&
         a.row_offsets().size() == a_offsets_.size() &&
         a.col_indices().size() == a_cols_.size() &&
         std::equal(a.row_offsets().begin(), a.row_offsets().end(), a_offsets_.begin()) &&
         std::equal(a.col_indices().begin(), a.col_indices().end(), a_cols_.begin());
}

void SparseLu::analyze(const CsrMatrix& a) {
  // Structural elimination under the frozen permutation: entry presence only,
  // no values, so no cancellation — the resulting L/U patterns are supersets
  // of every numeric factorization that uses perm_. inv_perm maps a physical
  // A row to its elimination position.
  std::vector<std::size_t> inv_perm(n_);
  for (std::size_t i = 0; i < n_; ++i) inv_perm[perm_[i]] = i;

  std::vector<std::vector<std::size_t>> u_pattern(n_);
  std::vector<char> occupied(n_, 0);
  std::vector<std::size_t> touched;
  touched.reserve(64);

  l_offsets_.assign(n_ + 1, 0);
  l_cols_.clear();

  const auto offsets = a.row_offsets();
  const auto cols = a.col_indices();
  for (std::size_t i = 0; i < n_; ++i) {
    const std::size_t r = perm_[i];
    touched.clear();
    for (std::size_t k = offsets[r]; k < offsets[r + 1]; ++k) {
      occupied[cols[k]] = 1;
      touched.push_back(cols[k]);
    }
    // Ascending scan over earlier pivots: each hit adds an L entry and unions
    // in that pivot's U row (O(n) per row; the symbolic pass runs once per
    // pattern, so the simplicity beats an elimination-tree traversal here).
    l_offsets_[i] = l_cols_.size();
    for (std::size_t k = 0; k < i; ++k) {
      if (!occupied[k]) continue;
      l_cols_.push_back(k);
      for (std::size_t j = 1; j < u_pattern[k].size(); ++j) {
        const std::size_t c = u_pattern[k][j];
        if (!occupied[c]) {
          occupied[c] = 1;
          touched.push_back(c);
        }
      }
    }
    // U row i: surviving columns >= i, diagonal first. The diagonal is forced
    // into the pattern — if a matrix leaves it numerically zero the pivot
    // check in refactorize() rejects it.
    auto& urow = u_pattern[i];
    urow.push_back(i);
    for (std::size_t c : touched) {
      if (c > i) urow.push_back(c);
    }
    std::sort(urow.begin() + 1, urow.end());
    urow.erase(std::unique(urow.begin() + 1, urow.end()), urow.end());
    for (std::size_t c : touched) occupied[c] = 0;
    occupied[i] = 0;
  }
  l_offsets_[n_] = l_cols_.size();

  u_offsets_.assign(n_ + 1, 0);
  u_cols_.clear();
  for (std::size_t i = 0; i < n_; ++i) {
    u_offsets_[i] = u_cols_.size();
    u_cols_.insert(u_cols_.end(), u_pattern[i].begin(), u_pattern[i].end());
  }
  u_offsets_[n_] = u_cols_.size();

  l_values_.assign(l_cols_.size(), 0.0);
  u_values_.assign(u_cols_.size(), 0.0);
  u_diag_.assign(n_, 0.0);
  work_.assign(n_, 0.0);
}

bool SparseLu::refactorize(const CsrMatrix& a, double pivot_tol, double degrade_ratio) {
  if (!factorized() || !pattern_matches(a)) return false;
  if (!analyzed_) {
    analyze(a);
    analyzed_ = true;
  }

  const auto offsets = a.row_offsets();
  const auto cols = a.col_indices();
  const auto vals = a.values();

  for (std::size_t i = 0; i < n_; ++i) {
    // Zero the dense scratch on this row's frozen pattern, then scatter A.
    for (std::size_t j = l_offsets_[i]; j < l_offsets_[i + 1]; ++j) work_[l_cols_[j]] = 0.0;
    for (std::size_t j = u_offsets_[i]; j < u_offsets_[i + 1]; ++j) work_[u_cols_[j]] = 0.0;
    const std::size_t r = perm_[i];
    for (std::size_t k = offsets[r]; k < offsets[r + 1]; ++k) work_[cols[k]] += vals[k];

    // Left-looking elimination over the frozen L pattern (ascending columns).
    for (std::size_t j = l_offsets_[i]; j < l_offsets_[i + 1]; ++j) {
      const std::size_t k = l_cols_[j];
      const double factor = work_[k] / u_diag_[k];
      l_values_[j] = factor;
      if (factor == 0.0) continue;
      for (std::size_t m = u_offsets_[k] + 1; m < u_offsets_[k + 1]; ++m) {
        work_[u_cols_[m]] -= factor * u_values_[m];
      }
    }

    // Gather U row i and check the frozen pivot still carries the row.
    double row_max = 0.0;
    for (std::size_t j = u_offsets_[i]; j < u_offsets_[i + 1]; ++j) {
      const double v = work_[u_cols_[j]];
      u_values_[j] = v;
      row_max = std::max(row_max, std::fabs(v));
    }
    const double diag = u_values_[u_offsets_[i]];
    u_diag_[i] = diag;
    if (!(std::fabs(diag) >= pivot_tol) || std::fabs(diag) < degrade_ratio * row_max) {
      return false;
    }
  }
  return true;
}

void SparseLu::solve(std::span<const double> b, std::span<double> x) const {
  OXMLC_CHECK(factorized(), "SparseLu::solve before factorize");
  OXMLC_CHECK(b.size() == n_ && x.size() == n_, "SparseLu::solve size mismatch");

  // Forward substitution: L y = P b (L has unit diagonal).
  for (std::size_t r = 0; r < n_; ++r) {
    double s = b[perm_[r]];
    for (std::size_t j = l_offsets_[r]; j < l_offsets_[r + 1]; ++j) {
      s -= l_values_[j] * x[l_cols_[j]];
    }
    x[r] = s;
  }
  // Back substitution: U x = y (U rows store the diagonal first).
  for (std::size_t ri = n_; ri-- > 0;) {
    double s = x[ri];
    for (std::size_t j = u_offsets_[ri] + 1; j < u_offsets_[ri + 1]; ++j) {
      s -= u_values_[j] * x[u_cols_[j]];
    }
    const double diag = u_diag_[ri];
    OXMLC_CHECK(diag != 0.0, "SparseLu: zero diagonal in back substitution");
    x[ri] = s / diag;
  }
}

// Out-of-line where BlockSchurLu is complete (unique_ptr member).
LinearSolver::LinearSolver() = default;
LinearSolver::~LinearSolver() = default;
LinearSolver::LinearSolver(LinearSolver&&) noexcept = default;
LinearSolver& LinearSolver::operator=(LinearSolver&&) noexcept = default;

void LinearSolver::set_partition(const BlockPartition& partition,
                                 const SchurOptions& options) {
  schur_ = std::make_unique<BlockSchurLu>(partition, options);
  hier_active_ = false;
}

void LinearSolver::clear_partition() {
  schur_.reset();
  hier_active_ = false;
}

bool LinearSolver::factorized() const {
  if (hier_active_) return schur_->factorized();
  return dense_active_ ? dense_.factorized() : sparse_.factorized();
}

void LinearSolver::factorize(const TripletMatrix& triplets) {
  last_refactorized_ = false;
  last_fallback_ = false;
  if (schur_) {
    // The hierarchical path is inherently cached per block; routing the
    // stateless entry point through it keeps factorize()/solve() consistent.
    schur_->factorize_cached(triplets);
    hier_active_ = true;
    last_refactorized_ = schur_->last_refactorized();
    return;
  }
  hier_active_ = false;
  dense_active_ = triplets.size() <= kDenseCutoff;
  if (dense_active_) {
    DenseMatrix a(triplets.size(), triplets.size());
    for (const Triplet& t : triplets.entries()) a.add(t.row, t.col, t.value);
    dense_.factorize(a);
  } else {
    sparse_.factorize(CsrMatrix::from_triplets(triplets));
  }
}

void LinearSolver::factorize_cached(const TripletMatrix& triplets) {
  last_refactorized_ = false;
  last_fallback_ = false;
  if (schur_) {
    schur_->factorize_cached(triplets);
    hier_active_ = true;
    last_refactorized_ = schur_->last_refactorized();
    return;
  }
  hier_active_ = false;
  dense_active_ = triplets.size() <= kDenseCutoff;
  if (dense_active_) {
    const std::size_t n = triplets.size();
    if (dense_buffer_.rows() != n || dense_buffer_.cols() != n) {
      dense_buffer_ = DenseMatrix(n, n);
    } else {
      dense_buffer_.set_zero();
    }
    for (const Triplet& t : triplets.entries()) dense_buffer_.add(t.row, t.col, t.value);
    dense_.factorize(dense_buffer_);
    return;
  }

  SparseLuMetrics& metrics = SparseLuMetrics::get();
  const CsrMatrix& a = assembly_.compress(triplets);
  if (assembly_.last_was_hit()) {
    metrics.pattern_hits.add();
  } else {
    metrics.pattern_misses.add();
  }

  if (assembly_.last_was_hit() && sparse_.factorized()) {
    if (sparse_.refactorize(a)) {
      last_refactorized_ = true;
      return;
    }
    metrics.fallbacks.add();
    last_fallback_ = true;
  }
  sparse_.factorize(a);
}

void LinearSolver::solve(std::span<const double> b, std::span<double> x) const {
  if (hier_active_) {
    schur_->solve(b, x);
  } else if (dense_active_) {
    dense_.solve(b, x);
  } else {
    sparse_.solve(b, x);
  }
}

}  // namespace oxmlc::num
