#include "numeric/sparse_lu.hpp"

#include <algorithm>
#include <cmath>

#include "numeric/linear_error.hpp"
#include "util/error.hpp"

namespace oxmlc::num {

void SparseLu::factorize(const CsrMatrix& a, double pivot_tol) {
  n_ = a.size();
  perm_.resize(n_);
  lower_.assign(n_, {});
  upper_.assign(n_, {});

  // Working rows: sorted (col, value) vectors, mutated during elimination.
  std::vector<std::vector<Entry>> rows(n_);
  {
    const auto offsets = a.row_offsets();
    const auto cols = a.col_indices();
    const auto vals = a.values();
    for (std::size_t r = 0; r < n_; ++r) {
      rows[r].reserve(offsets[r + 1] - offsets[r]);
      for (std::size_t k = offsets[r]; k < offsets[r + 1]; ++k) {
        rows[r].push_back({cols[k], vals[k]});
      }
    }
  }

  // row_order[i] = index into `rows` of the row currently in position i.
  std::vector<std::size_t> row_order(n_);
  for (std::size_t i = 0; i < n_; ++i) row_order[i] = i;

  // Dense scatter buffer for row updates.
  std::vector<double> work(n_, 0.0);
  std::vector<bool> occupied(n_, false);
  std::vector<std::size_t> touched;
  touched.reserve(64);

  auto leading_value = [&](std::size_t physical_row, std::size_t col) -> double {
    const auto& row = rows[physical_row];
    const auto it = std::lower_bound(
        row.begin(), row.end(), col,
        [](const Entry& e, std::size_t c) { return e.col < c; });
    return (it != row.end() && it->col == col) ? it->value : 0.0;
  };

  for (std::size_t k = 0; k < n_; ++k) {
    // Partial pivoting among remaining rows.
    std::size_t best = k;
    double best_mag = std::fabs(leading_value(row_order[k], k));
    for (std::size_t i = k + 1; i < n_; ++i) {
      const double mag = std::fabs(leading_value(row_order[i], k));
      if (mag > best_mag) {
        best_mag = mag;
        best = i;
      }
    }
    if (best_mag < pivot_tol) {
      throw SingularMatrixError(
          "SparseLu: numerically singular matrix at column " + std::to_string(k), k);
    }
    std::swap(row_order[k], row_order[best]);
    const std::size_t pivot_physical = row_order[k];
    const double pivot = leading_value(pivot_physical, k);

    // Move the pivot row's entries (col >= k) into U.
    auto& prow = rows[pivot_physical];
    for (const Entry& e : prow) {
      if (e.col >= k) upper_[k].push_back(e);
    }

    // Eliminate column k from all remaining rows that contain it.
    for (std::size_t i = k + 1; i < n_; ++i) {
      const std::size_t r = row_order[i];
      const double a_rk = leading_value(r, k);
      if (a_rk == 0.0) continue;
      const double factor = a_rk / pivot;
      lower_[i].push_back({k, factor});

      // Scatter row r (cols > k) into the work buffer...
      touched.clear();
      for (const Entry& e : rows[r]) {
        if (e.col <= k) continue;
        work[e.col] = e.value;
        occupied[e.col] = true;
        touched.push_back(e.col);
      }
      // ...subtract factor * pivot row...
      for (const Entry& e : upper_[k]) {
        if (e.col == k) continue;
        if (!occupied[e.col]) {
          occupied[e.col] = true;
          work[e.col] = 0.0;
          touched.push_back(e.col);
        }
        work[e.col] -= factor * e.value;
      }
      // ...and gather back sorted.
      std::sort(touched.begin(), touched.end());
      auto& row = rows[r];
      row.clear();
      for (std::size_t col : touched) {
        if (work[col] != 0.0) row.push_back({col, work[col]});
        occupied[col] = false;
      }
    }
    rows[pivot_physical].clear();
    rows[pivot_physical].shrink_to_fit();
  }

  perm_ = row_order;
}

void SparseLu::solve(std::span<const double> b, std::span<double> x) const {
  OXMLC_CHECK(factorized(), "SparseLu::solve before factorize");
  OXMLC_CHECK(b.size() == n_ && x.size() == n_, "SparseLu::solve size mismatch");

  // Forward substitution: L y = P b (L has unit diagonal).
  for (std::size_t r = 0; r < n_; ++r) {
    double s = b[perm_[r]];
    for (const Entry& e : lower_[r]) s -= e.value * x[e.col];
    x[r] = s;
  }
  // Back substitution: U x = y.
  for (std::size_t ri = n_; ri-- > 0;) {
    double s = x[ri];
    double diag = 0.0;
    for (const Entry& e : upper_[ri]) {
      if (e.col == ri) {
        diag = e.value;
      } else {
        s -= e.value * x[e.col];
      }
    }
    OXMLC_CHECK(diag != 0.0, "SparseLu: zero diagonal in back substitution");
    x[ri] = s / diag;
  }
}

std::size_t SparseLu::fill_nnz() const {
  std::size_t nnz = 0;
  for (const auto& row : lower_) nnz += row.size();
  for (const auto& row : upper_) nnz += row.size();
  return nnz;
}

void LinearSolver::factorize(const TripletMatrix& triplets) {
  dense_active_ = triplets.size() <= kDenseCutoff;
  if (dense_active_) {
    DenseMatrix a(triplets.size(), triplets.size());
    for (const Triplet& t : triplets.entries()) a.add(t.row, t.col, t.value);
    dense_.factorize(a);
  } else {
    sparse_.factorize(CsrMatrix::from_triplets(triplets));
  }
}

void LinearSolver::solve(std::span<const double> b, std::span<double> x) const {
  if (dense_active_) {
    dense_.solve(b, x);
  } else {
    sparse_.solve(b, x);
  }
}

}  // namespace oxmlc::num
