// Dense complex LU with partial pivoting, for AC (small-signal) analysis.
// AC testbenches linearize around an operating point, so their matrices are
// the size of the DC system — dense is the right tool.
#pragma once

#include <complex>
#include <cstddef>
#include <span>
#include <vector>

namespace oxmlc::num {

using Complex = std::complex<double>;

class ComplexDenseMatrix {
 public:
  ComplexDenseMatrix() = default;
  ComplexDenseMatrix(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols) {}

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  Complex& at(std::size_t r, std::size_t c) { return data_[r * cols_ + c]; }
  Complex at(std::size_t r, std::size_t c) const { return data_[r * cols_ + c]; }
  void add(std::size_t r, std::size_t c, Complex v) { at(r, c) += v; }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<Complex> data_;
};

class ComplexLu {
 public:
  // Factorizes a copy of `a`; throws ConvergenceError when singular.
  void factorize(const ComplexDenseMatrix& a, double pivot_tol = 1e-14);
  void solve(std::span<const Complex> b, std::span<Complex> x) const;

  bool factorized() const { return n_ > 0; }

 private:
  std::size_t n_ = 0;
  ComplexDenseMatrix lu_;
  std::vector<std::size_t> perm_;
};

}  // namespace oxmlc::num
