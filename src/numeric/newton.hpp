// Damped Newton–Raphson for nonlinear systems F(x) = 0 with sparse Jacobians.
//
// The MNA engine implements `NonlinearSystem` by stamping linearized device
// models; Newton owns the iteration policy (damping, step limiting,
// convergence norms) so that DC and transient analyses share one solver.
#pragma once

#include <cstddef>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "numeric/sparse_lu.hpp"

namespace oxmlc::num {

// Client interface: given the current iterate x, fill the Jacobian J(x) and
// the residual F(x). The matrix passed in is already sized and cleared.
class NonlinearSystem {
 public:
  virtual ~NonlinearSystem() = default;

  virtual std::size_t dimension() const = 0;

  virtual void assemble(std::span<const double> x, TripletMatrix& jacobian,
                        std::span<double> residual) = 0;

  // Optional per-component clamp on the Newton update, applied before damping.
  // Circuit use: limit node-voltage moves to ~1 V per iteration so exponential
  // device models do not overflow. Default: no limiting.
  virtual double max_step(std::size_t component) const {
    (void)component;
    return 0.0;  // 0 = unlimited
  }
};

struct NewtonOptions {
  std::size_t max_iterations = 100;
  double rel_tol = 1e-6;
  double abs_tol = 1e-9;       // on solution components (volts/amperes)
  double residual_tol = 1e-9;  // on KCL residual (amperes)
  // Damping: when the full step does not reduce the residual norm, halve up to
  // this many times before accepting the best candidate anyway.
  std::size_t max_damping_halvings = 4;
};

struct NewtonResult {
  bool converged = false;
  std::size_t iterations = 0;
  double final_residual_norm = 0.0;
  double final_update_norm = 0.0;  // weighted RMS of last dx
};

// Caller-owned scratch for solve_newton. A workspace amortizes the Jacobian
// triplet buffer, the iteration vectors, and — through
// LinearSolver::factorize_cached — the CSR assembly pattern and LU symbolic
// analysis across every Newton solve that reuses it. Reuse is what makes the
// two-phase LU pay off: a transient run passes the same workspace to every
// timestep, so each iteration after the first is a numeric-only refactorize.
// Not thread-safe; use one workspace per thread.
struct NewtonWorkspace {
  TripletMatrix jacobian;
  std::vector<double> residual;
  std::vector<double> dx;
  std::vector<double> x_trial;
  std::vector<double> residual_trial;
  LinearSolver solver;
};

// Iterates x_{k+1} = x_k + s * dx, J dx = -F, until both the weighted update
// norm and the residual infinity-norm are under tolerance.
// `x` carries the initial guess in and the solution out.
// The workspace overload reuses caller-owned buffers and the cached
// factorization pattern; the plain overload allocates a fresh workspace.
NewtonResult solve_newton(NonlinearSystem& system, std::span<double> x,
                          const NewtonOptions& options, NewtonWorkspace& workspace);
NewtonResult solve_newton(NonlinearSystem& system, std::span<double> x,
                          const NewtonOptions& options = {});

}  // namespace oxmlc::num
