#include "numeric/dense_matrix.hpp"

#include <algorithm>
#include <cmath>

#include "numeric/linear_error.hpp"
#include "util/error.hpp"

namespace oxmlc::num {

DenseMatrix::DenseMatrix(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

void DenseMatrix::set_zero() { std::fill(data_.begin(), data_.end(), 0.0); }

void DenseMatrix::multiply(std::span<const double> x, std::span<double> y) const {
  OXMLC_CHECK(x.size() == cols_ && y.size() == rows_, "DenseMatrix::multiply size mismatch");
  for (std::size_t r = 0; r < rows_; ++r) {
    double s = 0.0;
    const double* row = data_.data() + r * cols_;
    for (std::size_t c = 0; c < cols_; ++c) s += row[c] * x[c];
    y[r] = s;
  }
}

void DenseLu::factorize(const DenseMatrix& a, double pivot_tol) {
  OXMLC_CHECK(a.rows() == a.cols(), "DenseLu: matrix must be square");
  n_ = a.rows();
  lu_ = a;
  perm_.resize(n_);
  for (std::size_t i = 0; i < n_; ++i) perm_[i] = i;
  pivot_min_ = n_ ? std::fabs(lu_.at(0, 0)) : 0.0;

  for (std::size_t k = 0; k < n_; ++k) {
    // Partial pivoting: pick the largest magnitude in column k at/below row k.
    std::size_t pivot_row = k;
    double pivot_mag = std::fabs(lu_.at(k, k));
    for (std::size_t r = k + 1; r < n_; ++r) {
      const double mag = std::fabs(lu_.at(r, k));
      if (mag > pivot_mag) {
        pivot_mag = mag;
        pivot_row = r;
      }
    }
    if (pivot_mag < pivot_tol) {
      throw SingularMatrixError(
          "DenseLu: numerically singular matrix (pivot " + std::to_string(pivot_mag) +
              " at column " + std::to_string(k) + ")",
          k);
    }
    if (pivot_row != k) {
      for (std::size_t c = 0; c < n_; ++c) std::swap(lu_.at(k, c), lu_.at(pivot_row, c));
      std::swap(perm_[k], perm_[pivot_row]);
    }
    pivot_min_ = std::min(pivot_min_, pivot_mag);

    const double inv_pivot = 1.0 / lu_.at(k, k);
    for (std::size_t r = k + 1; r < n_; ++r) {
      const double factor = lu_.at(r, k) * inv_pivot;
      if (factor == 0.0) continue;
      lu_.at(r, k) = factor;
      for (std::size_t c = k + 1; c < n_; ++c) {
        lu_.at(r, c) -= factor * lu_.at(k, c);
      }
    }
  }
}

void DenseLu::solve(std::span<const double> b, std::span<double> x) const {
  OXMLC_CHECK(factorized(), "DenseLu::solve before factorize");
  OXMLC_CHECK(b.size() == n_ && x.size() == n_, "DenseLu::solve size mismatch");
  // Forward substitution with permutation: L y = P b.
  for (std::size_t r = 0; r < n_; ++r) {
    double s = b[perm_[r]];
    for (std::size_t c = 0; c < r; ++c) s -= lu_.at(r, c) * x[c];
    x[r] = s;
  }
  // Back substitution: U x = y.
  for (std::size_t ri = n_; ri-- > 0;) {
    double s = x[ri];
    for (std::size_t c = ri + 1; c < n_; ++c) s -= lu_.at(ri, c) * x[c];
    x[ri] = s / lu_.at(ri, ri);
  }
}

}  // namespace oxmlc::num
