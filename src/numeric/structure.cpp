#include "numeric/structure.hpp"

#include <algorithm>

namespace oxmlc::num {
namespace {

// Depth-first augmenting path from `row`. `match_col[c]` is the row currently
// matched to column c (or npos). Returns true when an augmenting path exists.
bool augment(std::size_t row, const std::vector<std::vector<std::size_t>>& adjacency,
             std::vector<std::size_t>& match_col, std::vector<bool>& visited) {
  for (std::size_t col : adjacency[row]) {
    if (visited[col]) continue;
    visited[col] = true;
    constexpr std::size_t kUnmatched = static_cast<std::size_t>(-1);
    if (match_col[col] == kUnmatched ||
        augment(match_col[col], adjacency, match_col, visited)) {
      match_col[col] = row;
      return true;
    }
  }
  return false;
}

}  // namespace

StructuralRankResult structural_rank(const TripletMatrix& pattern) {
  constexpr std::size_t kUnmatched = static_cast<std::size_t>(-1);
  const std::size_t n = pattern.size();

  // Row adjacency with deduplicated columns; a triplet's *presence* marks a
  // symbolic nonzero even when duplicate stamps would cancel numerically.
  std::vector<std::vector<std::size_t>> adjacency(n);
  for (const Triplet& t : pattern.entries()) {
    if (t.row < n && t.col < n) adjacency[t.row].push_back(t.col);
  }
  for (auto& cols : adjacency) {
    std::sort(cols.begin(), cols.end());
    cols.erase(std::unique(cols.begin(), cols.end()), cols.end());
  }

  std::vector<std::size_t> match_col(n, kUnmatched);
  StructuralRankResult result;
  std::vector<bool> visited(n);
  for (std::size_t row = 0; row < n; ++row) {
    std::fill(visited.begin(), visited.end(), false);
    if (augment(row, adjacency, match_col, visited)) {
      ++result.rank;
    } else {
      result.unmatched_rows.push_back(row);
    }
  }
  return result;
}

}  // namespace oxmlc::num
