#include "numeric/newton.hpp"

#include <algorithm>
#include <cmath>

#include "numeric/vec.hpp"
#include "obs/registry.hpp"
#include "util/error.hpp"
#include "util/logging.hpp"

namespace oxmlc::num {
namespace {

// Hot-path telemetry: references resolved once, then wait-free atomic adds.
struct NewtonMetrics {
  obs::Counter& solves = obs::registry().counter("newton.solves");
  obs::Counter& iterations = obs::registry().counter("newton.iterations");
  obs::Counter& factorizations = obs::registry().counter("newton.factorizations");
  obs::Counter& assemblies = obs::registry().counter("newton.assemblies");
  obs::Counter& damping_halvings = obs::registry().counter("newton.damping_halvings");
  obs::Counter& failures = obs::registry().counter("newton.convergence_failures");
  obs::Counter& refactorizations = obs::registry().counter("newton.refactorizations");
  obs::Timer& solve_time = obs::registry().timer("newton.solve_time");

  static NewtonMetrics& get() {
    static NewtonMetrics metrics;
    return metrics;
  }
};

}  // namespace

NewtonResult solve_newton(NonlinearSystem& system, std::span<double> x,
                          const NewtonOptions& options) {
  NewtonWorkspace workspace;
  return solve_newton(system, x, options, workspace);
}

NewtonResult solve_newton(NonlinearSystem& system, std::span<double> x,
                          const NewtonOptions& options, NewtonWorkspace& workspace) {
  const std::size_t n = system.dimension();
  OXMLC_CHECK(x.size() == n, "solve_newton: initial guess has wrong dimension");

  NewtonMetrics& metrics = NewtonMetrics::get();
  metrics.solves.add();
  obs::ScopedTimer solve_timer(metrics.solve_time);

  // Size the workspace for this system; assign() keeps capacity on reuse, so
  // a warm workspace does not allocate.
  TripletMatrix& jacobian = workspace.jacobian;
  jacobian.resize(n);
  std::vector<double>& residual = workspace.residual;
  std::vector<double>& dx = workspace.dx;
  std::vector<double>& x_trial = workspace.x_trial;
  std::vector<double>& residual_trial = workspace.residual_trial;
  residual.assign(n, 0.0);
  dx.assign(n, 0.0);
  x_trial.assign(n, 0.0);
  residual_trial.assign(n, 0.0);
  LinearSolver& solver = workspace.solver;

  NewtonResult result;

  jacobian.clear();
  system.assemble(x, jacobian, residual);
  metrics.assemblies.add();
  double residual_norm = norm_inf(residual);

  for (std::size_t iter = 0; iter < options.max_iterations; ++iter) {
    result.iterations = iter + 1;
    metrics.iterations.add();

    if (residual_norm <= options.residual_tol && iter > 0 &&
        result.final_update_norm <= 1.0) {
      result.converged = true;
      result.final_residual_norm = residual_norm;
      return result;
    }

    solver.factorize_cached(jacobian);
    metrics.factorizations.add();
    if (solver.last_refactorized()) metrics.refactorizations.add();
    // Solve J dx = -F.
    for (std::size_t i = 0; i < n; ++i) residual[i] = -residual[i];
    solver.solve(residual, dx);

    // Per-component step limiting (e.g. clamp node voltage moves).
    for (std::size_t i = 0; i < n; ++i) {
      const double limit = system.max_step(i);
      if (limit > 0.0) dx[i] = std::clamp(dx[i], -limit, limit);
    }

    // Damped line search on the residual norm.
    double scale = 1.0;
    double best_scale = 1.0;
    double best_norm = std::numeric_limits<double>::infinity();
    for (std::size_t halving = 0; halving <= options.max_damping_halvings; ++halving) {
      if (halving > 0) metrics.damping_halvings.add();
      for (std::size_t i = 0; i < n; ++i) x_trial[i] = x[i] + scale * dx[i];
      jacobian.clear();
      system.assemble(x_trial, jacobian, residual_trial);
      metrics.assemblies.add();
      const double trial_norm = norm_inf(residual_trial);
      if (trial_norm < best_norm) {
        best_norm = trial_norm;
        best_scale = scale;
      }
      // Accept as soon as the residual decreases (standard Armijo-ish rule).
      if (trial_norm <= residual_norm || trial_norm <= options.residual_tol) break;
      scale *= 0.5;
    }

    if (best_scale != scale) {
      // Re-assemble at the best damping found (the loop may have overshot).
      for (std::size_t i = 0; i < n; ++i) x_trial[i] = x[i] + best_scale * dx[i];
      jacobian.clear();
      system.assemble(x_trial, jacobian, residual_trial);
      metrics.assemblies.add();
      best_norm = norm_inf(residual_trial);
    }

    result.final_update_norm =
        weighted_rms(dx, x, options.rel_tol, options.abs_tol) * best_scale;
    std::copy(x_trial.begin(), x_trial.end(), x.begin());
    residual.assign(residual_trial.begin(), residual_trial.end());
    residual_norm = best_norm;

    if (result.final_update_norm <= 1.0 && residual_norm <= options.residual_tol) {
      result.converged = true;
      result.final_residual_norm = residual_norm;
      return result;
    }
  }

  result.final_residual_norm = residual_norm;
  metrics.failures.add();
  OXMLC_DEBUG << "Newton failed to converge: residual=" << residual_norm
              << " after " << result.iterations << " iterations";
  return result;
}

}  // namespace oxmlc::num
