// Dense row-major matrix with LU factorization (partial pivoting).
//
// MNA systems for the circuits in this project are small (tens of nodes), so a
// dense factorization is both the fastest and the most robust choice below the
// sparse cutoff; the sparse path (sparse_lu.hpp) covers large parasitic-ladder
// arrays.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace oxmlc::num {

class DenseMatrix {
 public:
  DenseMatrix() = default;
  DenseMatrix(std::size_t rows, std::size_t cols);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  double& at(std::size_t r, std::size_t c) { return data_[r * cols_ + c]; }
  double at(std::size_t r, std::size_t c) const { return data_[r * cols_ + c]; }

  void set_zero();
  void add(std::size_t r, std::size_t c, double v) { at(r, c) += v; }

  // y = A x
  void multiply(std::span<const double> x, std::span<double> y) const;

  std::span<double> row(std::size_t r) { return {data_.data() + r * cols_, cols_}; }
  std::span<const double> row(std::size_t r) const { return {data_.data() + r * cols_, cols_}; }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

// In-place LU with partial pivoting. Throws ConvergenceError if the matrix is
// numerically singular (pivot below `pivot_tol`).
class DenseLu {
 public:
  // Factorizes a copy of `a` (must be square).
  void factorize(const DenseMatrix& a, double pivot_tol = 1e-14);

  // Solves A x = b using the stored factors. b.size() == n.
  void solve(std::span<const double> b, std::span<double> x) const;

  bool factorized() const { return n_ > 0; }
  std::size_t size() const { return n_; }

  // |det(A)| estimate from the pivots; used in singularity diagnostics.
  double pivot_min_abs() const { return pivot_min_; }

 private:
  std::size_t n_ = 0;
  DenseMatrix lu_;
  std::vector<std::size_t> perm_;
  double pivot_min_ = 0.0;
};

}  // namespace oxmlc::num
