// Fixed-width SIMD packs for the hot batch kernels (drift, stack solve, gap
// integration).
//
// Two interchangeable backends implement the same 4-lane pack interface:
//
//   * PackAvx    — AVX2 + FMA intrinsics, compiled only when the translation
//                  unit is built with those ISAs enabled (OXMLC_NATIVE, or an
//                  explicit -march=x86-64-v3 style flag).
//   * PackScalar — portable element-wise loops over the *same* arithmetic
//                  (std::fma where the AVX path uses vfmadd, IEEE ±*/sqrt
//                  everywhere else), always compiled.
//
// Every kernel in the repo is a template over the pack type and is
// instantiated for both backends, so the two paths execute the same sequence
// of IEEE-754 double operations lane by lane and produce BITWISE-IDENTICAL
// results — which is what lets the equivalence suite pin "same results across
// SIMD widths/ISAs" as an exact assertion instead of a tolerance. The
// transcendentals (exp, log1p) are our own fma-explicit polynomial
// implementations for the same reason: libm's vectorized and scalar exp need
// not agree bitwise, ours do by construction. Accuracy is ~1 ulp (tested
// against libm at 1e-13 relative), far inside the 1e-9 pin the scalar
// reference paths are held to.
//
// Backend selection is a runtime decision (see simd.cpp): kAuto resolves to
// AVX2 when the binary carries the AVX2 instantiation *and* cpuid reports the
// ISA, else the portable pack. The OXMLC_SIMD environment variable and the
// set_backend_override() test hook force a specific backend; "off" additionally
// tells call sites (drift batch, CellBatch) to use their scalar reference
// engines instead of the pack kernels.
#pragma once

#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>

#if defined(__AVX2__) && defined(__FMA__)
#include <immintrin.h>
#define OXMLC_SIMD_HAS_AVX2 1
#else
#define OXMLC_SIMD_HAS_AVX2 0
#endif

namespace oxmlc::num::simd {

inline constexpr int kPackWidth = 4;

// ---------------------------------------------------------------------------
// Runtime backend selection (implemented in simd.cpp).
// ---------------------------------------------------------------------------

enum class Backend {
  kAuto = 0,     // resolve from compile flags + cpuid + OXMLC_SIMD env var
  kScalar = 1,   // portable element-wise pack
  kAvx2 = 2,     // AVX2 + FMA pack (requires the AVX2 instantiation)
  kReference = 3 // no pack kernels at all: call sites use their scalar
                 // reference engines (OXMLC_SIMD=off)
};

// True when this binary contains the AVX2 instantiations AND the host CPU
// reports AVX2 + FMA.
bool avx2_available();

// Resolves kAuto to a concrete backend (kScalar / kAvx2 / kReference),
// honouring the OXMLC_SIMD env var ("auto", "avx2", "scalar", "off") and any
// set_backend_override() in effect. Never returns kAuto.
Backend active_backend();

// Test hook: forces the backend until reset with kAuto. Returns the previous
// override.
Backend set_backend_override(Backend backend);

const char* backend_name(Backend backend);

// ---------------------------------------------------------------------------
// Shared constants of the transcendental kernels.
// ---------------------------------------------------------------------------

namespace detail {
inline constexpr double kLog2E = 1.4426950408889634073599246810019;
// ln2 split hi/lo so n*ln2 subtracts exactly (Cody-Waite range reduction).
inline constexpr double kLn2Hi = 6.93147180369123816490e-01;
inline constexpr double kLn2Lo = 1.90821492927058770002e-10;
inline constexpr double kExpOverflow = 709.0;    // exp(x) saturates to inf above
inline constexpr double kExpUnderflow = -708.0;  // exp(x) flushes to 0 below
inline constexpr double kSqrt2 = 1.41421356237309504880168872421;
// 2^52 + 2^51: adding it to an integer-valued double in (-2^51, 2^51) leaves
// that integer in the low mantissa bits (the classic double->int64 round trip).
inline constexpr double kShifter = 6755399441055744.0;
inline constexpr std::int64_t kShifterBits = 0x4338000000000000LL;

// Degree-13 Taylor coefficients of exp(r) on |r| <= ln2/2; truncation error
// ~2e-18 relative, below the 1-ulp target.
inline constexpr double kExpC[14] = {
    1.0,
    1.0,
    1.0 / 2.0,
    1.0 / 6.0,
    1.0 / 24.0,
    1.0 / 120.0,
    1.0 / 720.0,
    1.0 / 5040.0,
    1.0 / 40320.0,
    1.0 / 362880.0,
    1.0 / 3628800.0,
    1.0 / 39916800.0,
    1.0 / 479001600.0,
    1.0 / 6227020800.0,
};

// atanh series coefficients for log(m) = 2*atanh(s), s = (m-1)/(m+1),
// m in [sqrt(1/2), sqrt(2)) so |s| <= 0.1716; the s^19 tail is ~2e-16 of the
// leading term.
inline constexpr double kLogC[10] = {
    2.0,
    2.0 / 3.0,
    2.0 / 5.0,
    2.0 / 7.0,
    2.0 / 9.0,
    2.0 / 11.0,
    2.0 / 13.0,
    2.0 / 15.0,
    2.0 / 17.0,
    2.0 / 19.0,
};
}  // namespace detail

// ---------------------------------------------------------------------------
// Portable pack (always compiled). Element-wise loops over IEEE operations;
// std::fma keeps the arithmetic identical to the AVX2 vfmadd path.
// ---------------------------------------------------------------------------

struct PackScalar {
  struct Mask {
    bool m[kPackWidth];
    friend Mask operator&(Mask a, Mask b) {
      Mask r;
      for (int i = 0; i < kPackWidth; ++i) r.m[i] = a.m[i] && b.m[i];
      return r;
    }
    friend Mask operator|(Mask a, Mask b) {
      Mask r;
      for (int i = 0; i < kPackWidth; ++i) r.m[i] = a.m[i] || b.m[i];
      return r;
    }
    Mask operator!() const {
      Mask r;
      for (int i = 0; i < kPackWidth; ++i) r.m[i] = !m[i];
      return r;
    }
    bool any() const { return m[0] || m[1] || m[2] || m[3]; }
    bool all() const { return m[0] && m[1] && m[2] && m[3]; }
  };

  struct Vec {
    double v[kPackWidth];

    static Vec load(const double* p) {
      Vec r;
      for (int i = 0; i < kPackWidth; ++i) r.v[i] = p[i];
      return r;
    }
    static Vec broadcast(double x) {
      Vec r;
      for (int i = 0; i < kPackWidth; ++i) r.v[i] = x;
      return r;
    }
    void store(double* p) const {
      for (int i = 0; i < kPackWidth; ++i) p[i] = v[i];
    }
    double lane(int i) const { return v[i]; }
    void set_lane(int i, double x) { v[i] = x; }

    friend Vec operator+(Vec a, Vec b) {
      Vec r;
      for (int i = 0; i < kPackWidth; ++i) r.v[i] = a.v[i] + b.v[i];
      return r;
    }
    friend Vec operator-(Vec a, Vec b) {
      Vec r;
      for (int i = 0; i < kPackWidth; ++i) r.v[i] = a.v[i] - b.v[i];
      return r;
    }
    friend Vec operator*(Vec a, Vec b) {
      Vec r;
      for (int i = 0; i < kPackWidth; ++i) r.v[i] = a.v[i] * b.v[i];
      return r;
    }
    friend Vec operator/(Vec a, Vec b) {
      Vec r;
      for (int i = 0; i < kPackWidth; ++i) r.v[i] = a.v[i] / b.v[i];
      return r;
    }
    Vec operator-() const {
      Vec r;
      // 0 - v, not IEEE negate: mirrors the AVX2 path (_mm256_sub_pd from
      // zero), which differ on signed zeros.
      for (int i = 0; i < kPackWidth; ++i) r.v[i] = 0.0 - v[i];
      return r;
    }
  };

  static Vec fma(Vec a, Vec b, Vec c) {
    Vec r;
    for (int i = 0; i < kPackWidth; ++i) r.v[i] = std::fma(a.v[i], b.v[i], c.v[i]);
    return r;
  }
  static Vec min(Vec a, Vec b) {
    Vec r;
    // Mirrors _mm256_min_pd: returns b when a < b is false (incl. NaN in a).
    for (int i = 0; i < kPackWidth; ++i) r.v[i] = a.v[i] < b.v[i] ? a.v[i] : b.v[i];
    return r;
  }
  static Vec max(Vec a, Vec b) {
    Vec r;
    for (int i = 0; i < kPackWidth; ++i) r.v[i] = a.v[i] > b.v[i] ? a.v[i] : b.v[i];
    return r;
  }
  static Vec abs(Vec a) {
    Vec r;
    for (int i = 0; i < kPackWidth; ++i) r.v[i] = std::fabs(a.v[i]);
    return r;
  }
  static Vec sqrt(Vec a) {
    Vec r;
    for (int i = 0; i < kPackWidth; ++i) r.v[i] = std::sqrt(a.v[i]);
    return r;
  }
  static Vec round_nearest(Vec a) {
    Vec r;
    for (int i = 0; i < kPackWidth; ++i) r.v[i] = std::nearbyint(a.v[i]);
    return r;
  }
  static Mask lt(Vec a, Vec b) {
    Mask r;
    for (int i = 0; i < kPackWidth; ++i) r.m[i] = a.v[i] < b.v[i];
    return r;
  }
  static Mask le(Vec a, Vec b) {
    Mask r;
    for (int i = 0; i < kPackWidth; ++i) r.m[i] = a.v[i] <= b.v[i];
    return r;
  }
  static Mask gt(Vec a, Vec b) { return lt(b, a); }
  static Mask ge(Vec a, Vec b) { return le(b, a); }
  static Vec select(Mask m, Vec a, Vec b) {
    Vec r;
    for (int i = 0; i < kPackWidth; ++i) r.v[i] = m.m[i] ? a.v[i] : b.v[i];
    return r;
  }

  // Bit-level helpers used by exp/log1p range reduction (element-wise mirrors
  // of the AVX2 integer ops).
  static Vec ldexp_pow2(Vec n) {  // 2^n for integer-valued n in [-1022, 1023]
    Vec r;
    for (int i = 0; i < kPackWidth; ++i) {
      const std::int64_t bits = (static_cast<std::int64_t>(n.v[i]) + 1023) << 52;
      double d;
      std::memcpy(&d, &bits, sizeof(d));
      r.v[i] = d;
    }
    return r;
  }
  struct Frexp {
    Vec mantissa;  // in [sqrt(1/2), sqrt(2))
    Vec exponent;  // integer-valued double
  };
  static Frexp frexp_sqrt2(Vec u) {
    Frexp f;
    for (int i = 0; i < kPackWidth; ++i) {
      std::int64_t bits;
      std::memcpy(&bits, &u.v[i], sizeof(bits));
      std::int64_t e = ((bits >> 52) & 0x7FF) - 1023;
      std::int64_t mbits = (bits & 0x000FFFFFFFFFFFFFLL) | 0x3FF0000000000000LL;
      double m;
      std::memcpy(&m, &mbits, sizeof(m));
      if (m >= detail::kSqrt2) {
        m *= 0.5;
        e += 1;
      }
      f.mantissa.v[i] = m;
      f.exponent.v[i] = static_cast<double>(e);
    }
    return f;
  }
};

// ---------------------------------------------------------------------------
// AVX2 + FMA pack (compiled only when the TU targets those ISAs).
// ---------------------------------------------------------------------------

#if OXMLC_SIMD_HAS_AVX2
struct PackAvx {
  struct Mask {
    __m256d m;
    friend Mask operator&(Mask a, Mask b) { return {_mm256_and_pd(a.m, b.m)}; }
    friend Mask operator|(Mask a, Mask b) { return {_mm256_or_pd(a.m, b.m)}; }
    Mask operator!() const {
      return {_mm256_xor_pd(m, _mm256_castsi256_pd(_mm256_set1_epi64x(-1)))};
    }
    bool any() const { return _mm256_movemask_pd(m) != 0; }
    bool all() const { return _mm256_movemask_pd(m) == 0xF; }
  };

  struct Vec {
    __m256d v;

    static Vec load(const double* p) { return {_mm256_loadu_pd(p)}; }
    static Vec broadcast(double x) { return {_mm256_set1_pd(x)}; }
    void store(double* p) const { _mm256_storeu_pd(p, v); }
    double lane(int i) const {
      alignas(32) double tmp[kPackWidth];
      _mm256_store_pd(tmp, v);
      return tmp[i];
    }
    void set_lane(int i, double x) {
      alignas(32) double tmp[kPackWidth];
      _mm256_store_pd(tmp, v);
      tmp[i] = x;
      v = _mm256_load_pd(tmp);
    }

    friend Vec operator+(Vec a, Vec b) { return {_mm256_add_pd(a.v, b.v)}; }
    friend Vec operator-(Vec a, Vec b) { return {_mm256_sub_pd(a.v, b.v)}; }
    friend Vec operator*(Vec a, Vec b) { return {_mm256_mul_pd(a.v, b.v)}; }
    friend Vec operator/(Vec a, Vec b) { return {_mm256_div_pd(a.v, b.v)}; }
    Vec operator-() const { return {_mm256_sub_pd(_mm256_setzero_pd(), v)}; }
  };

  static Vec fma(Vec a, Vec b, Vec c) { return {_mm256_fmadd_pd(a.v, b.v, c.v)}; }
  static Vec min(Vec a, Vec b) { return {_mm256_min_pd(a.v, b.v)}; }
  static Vec max(Vec a, Vec b) { return {_mm256_max_pd(a.v, b.v)}; }
  static Vec abs(Vec a) {
    const __m256d sign = _mm256_castsi256_pd(_mm256_set1_epi64x(0x7FFFFFFFFFFFFFFFLL));
    return {_mm256_and_pd(a.v, sign)};
  }
  static Vec sqrt(Vec a) { return {_mm256_sqrt_pd(a.v)}; }
  static Vec round_nearest(Vec a) {
    return {_mm256_round_pd(a.v, _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC)};
  }
  static Mask lt(Vec a, Vec b) { return {_mm256_cmp_pd(a.v, b.v, _CMP_LT_OQ)}; }
  static Mask le(Vec a, Vec b) { return {_mm256_cmp_pd(a.v, b.v, _CMP_LE_OQ)}; }
  static Mask gt(Vec a, Vec b) { return {_mm256_cmp_pd(a.v, b.v, _CMP_GT_OQ)}; }
  static Mask ge(Vec a, Vec b) { return {_mm256_cmp_pd(a.v, b.v, _CMP_GE_OQ)}; }
  static Vec select(Mask m, Vec a, Vec b) { return {_mm256_blendv_pd(b.v, a.v, m.m)}; }

  static Vec ldexp_pow2(Vec n) {
    // Integer-valued n -> int64 via the 2^52+2^51 shifter, then build the
    // exponent field directly.
    const __m256d shifted = _mm256_add_pd(n.v, _mm256_set1_pd(detail::kShifter));
    const __m256i bits = _mm256_sub_epi64(_mm256_castpd_si256(shifted),
                                          _mm256_set1_epi64x(detail::kShifterBits));
    const __m256i pow2 =
        _mm256_slli_epi64(_mm256_add_epi64(bits, _mm256_set1_epi64x(1023)), 52);
    return {_mm256_castsi256_pd(pow2)};
  }
  struct Frexp {
    Vec mantissa;
    Vec exponent;
  };
  static Frexp frexp_sqrt2(Vec u) {
    const __m256i bits = _mm256_castpd_si256(u.v);
    const __m256i raw_exp = _mm256_and_si256(_mm256_srli_epi64(bits, 52),
                                             _mm256_set1_epi64x(0x7FF));
    const __m256i mbits =
        _mm256_or_si256(_mm256_and_si256(bits, _mm256_set1_epi64x(0x000FFFFFFFFFFFFFLL)),
                        _mm256_set1_epi64x(0x3FF0000000000000LL));
    Vec m{_mm256_castsi256_pd(mbits)};
    // raw_exp - 1023 as double via the shifter trick in reverse.
    const __m256i e_biased = _mm256_add_epi64(raw_exp, _mm256_castpd_si256(_mm256_set1_pd(
                                                           detail::kShifter)));
    Vec e{_mm256_sub_pd(_mm256_castsi256_pd(e_biased),
                        _mm256_set1_pd(detail::kShifter + 1023.0))};
    const Mask above = ge(m, Vec::broadcast(detail::kSqrt2));
    Frexp f;
    f.mantissa = select(above, m * Vec::broadcast(0.5), m);
    f.exponent = select(above, e + Vec::broadcast(1.0), e);
    return f;
  }
};
#endif  // OXMLC_SIMD_HAS_AVX2

// ---------------------------------------------------------------------------
// Transcendentals, templated over the pack. Identical operation sequences in
// both backends => bitwise-identical results.
// ---------------------------------------------------------------------------

// exp(x) to ~1 ulp. Saturates: x > 709 -> inf, x < -708 -> 0 (both far outside
// every kernel's operating range; the clamp only guards pathological inputs).
template <typename P>
typename P::Vec exp(typename P::Vec x) {
  using V = typename P::Vec;
  const V overflow = V::broadcast(detail::kExpOverflow);
  const V underflow = V::broadcast(detail::kExpUnderflow);
  const V xc = P::min(P::max(x, underflow), overflow);

  const V n = P::round_nearest(xc * V::broadcast(detail::kLog2E));
  V r = P::fma(n, V::broadcast(-detail::kLn2Hi), xc);
  r = P::fma(n, V::broadcast(-detail::kLn2Lo), r);

  V p = V::broadcast(detail::kExpC[13]);
  for (int k = 12; k >= 0; --k) p = P::fma(p, r, V::broadcast(detail::kExpC[k]));
  V result = p * P::ldexp_pow2(n);

  result = P::select(P::gt(x, overflow),
                     V::broadcast(std::numeric_limits<double>::infinity()), result);
  result = P::select(P::lt(x, underflow), V::broadcast(0.0), result);
  return result;
}

// log1p(x) for x > -1, to ~1 ulp (exact small-x behaviour via the u-correction
// term). Inputs <= -1 produce -inf / NaN like libm; +/-0 passes through.
template <typename P>
typename P::Vec log1p(typename P::Vec x) {
  using V = typename P::Vec;
  const V one = V::broadcast(1.0);
  const V u = x + one;

  const typename P::Frexp f = P::frexp_sqrt2(u);
  // log(m) = 2*atanh(s), s = (m-1)/(m+1).
  const V s = (f.mantissa - one) / (f.mantissa + one);
  const V s2 = s * s;
  V p = V::broadcast(detail::kLogC[9]);
  for (int k = 8; k >= 0; --k) p = P::fma(p, s2, V::broadcast(detail::kLogC[k]));
  const V log_m = p * s;

  // log(u) = e*ln2 + log(m), with ln2 split to keep the product exact.
  V result = P::fma(f.exponent, V::broadcast(detail::kLn2Lo), log_m);
  result = P::fma(f.exponent, V::broadcast(detail::kLn2Hi), result);

  // Correction for the rounding in u = 1 + x: log1p(x) ~= log(u) + (x-(u-1))/u.
  // Guarded so u == 0 (x == -1) or non-finite u do not poison the result.
  const typename P::Mask finite_u =
      P::gt(u, V::broadcast(0.0)) & P::lt(u, V::broadcast(std::numeric_limits<double>::infinity()));
  const V corr = (x - (u - one)) / u;
  result = result + P::select(finite_u, corr, V::broadcast(0.0));

  // Tiny x: u rounds to exactly 1 and the decomposition returns 0; the
  // correction term then carries the whole value (log1p(x) ~ x), which the
  // formula above already does. x == 0 stays exactly 0 because every term is 0.

  // Out-of-domain / non-finite inputs: match libm semantics instead of
  // returning whatever the bit-level decomposition produced.
  result = P::select(P::le(u, V::broadcast(0.0)),
                     P::select(P::lt(u, V::broadcast(0.0)),
                               V::broadcast(std::numeric_limits<double>::quiet_NaN()),
                               V::broadcast(-std::numeric_limits<double>::infinity())),
                     result);
  result = P::select(P::ge(x, V::broadcast(std::numeric_limits<double>::infinity())),
                     V::broadcast(std::numeric_limits<double>::infinity()), result);
  return result;
}

}  // namespace oxmlc::num::simd
