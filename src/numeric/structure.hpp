// Structural (symbolic) analysis of sparsity patterns.
//
// A matrix is structurally singular when no permutation of its rows puts a
// (symbolically) nonzero entry on every diagonal position — equivalently, when
// the bipartite row/column graph of its pattern has no perfect matching. Such
// a matrix is singular for *every* choice of entry values, so the failure is a
// topology bug (floating branch equation, empty row), not a numerical one.
// The circuit analyzer runs this check on the MNA pattern before any solve and
// names the unmatched unknowns instead of letting LU fail at pivot time.
#pragma once

#include <cstddef>
#include <vector>

#include "numeric/sparse_matrix.hpp"

namespace oxmlc::num {

struct StructuralRankResult {
  std::size_t rank = 0;                     // size of the maximum matching
  std::vector<std::size_t> unmatched_rows;  // rows with no diagonal assignment
  bool full_rank(std::size_t n) const { return rank == n; }
};

// Maximum bipartite matching (Kuhn's augmenting paths) between rows and
// columns of the pattern. O(n * nnz) worst case — fine for circuit-sized
// systems, and only run once per circuit, not per solve.
StructuralRankResult structural_rank(const TripletMatrix& pattern);

}  // namespace oxmlc::num
