#include "numeric/simd.hpp"

#include <atomic>
#include <cstdlib>
#include <string>

namespace oxmlc::num::simd {
namespace {

std::atomic<Backend> g_override{Backend::kAuto};

bool cpu_has_avx2_fma() {
#if defined(__x86_64__) || defined(__i386__)
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
#else
  return false;
#endif
}

// OXMLC_SIMD environment override, parsed once: "auto" (default), "avx2",
// "scalar" (portable pack), "off"/"reference" (scalar reference engines, no
// pack kernels).
Backend env_backend() {
  static const Backend parsed = [] {
    const char* env = std::getenv("OXMLC_SIMD");
    if (env == nullptr) return Backend::kAuto;
    const std::string value(env);
    if (value == "avx2") return Backend::kAvx2;
    if (value == "scalar") return Backend::kScalar;
    if (value == "off" || value == "reference") return Backend::kReference;
    return Backend::kAuto;
  }();
  return parsed;
}

}  // namespace

bool avx2_available() {
  static const bool available = OXMLC_SIMD_HAS_AVX2 != 0 && cpu_has_avx2_fma();
  return available;
}

Backend active_backend() {
  Backend backend = g_override.load(std::memory_order_relaxed);
  if (backend == Backend::kAuto) backend = env_backend();
  if (backend == Backend::kAvx2 && !avx2_available()) backend = Backend::kScalar;
  if (backend == Backend::kAuto) {
    backend = avx2_available() ? Backend::kAvx2 : Backend::kScalar;
  }
  return backend;
}

Backend set_backend_override(Backend backend) {
  return g_override.exchange(backend, std::memory_order_relaxed);
}

const char* backend_name(Backend backend) {
  switch (backend) {
    case Backend::kAuto:
      return "auto";
    case Backend::kScalar:
      return "scalar";
    case Backend::kAvx2:
      return "avx2";
    case Backend::kReference:
      return "reference";
  }
  return "unknown";
}

}  // namespace oxmlc::num::simd
