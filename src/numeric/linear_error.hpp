// Typed failure for LU factorizations.
//
// All three factorizations (DenseLu, SparseLu, ComplexLu) report a numerically
// singular matrix through this exception instead of a bare ConvergenceError,
// carrying the zero-pivot column index. Higher layers that know what the
// unknowns *mean* (the MNA assembler knows column k is node "bl" or the branch
// current of "VSL") catch it and re-throw with circuit-level context.
#pragma once

#include <cstddef>
#include <string>

#include "util/error.hpp"

namespace oxmlc::num {

class SingularMatrixError : public ConvergenceError {
 public:
  SingularMatrixError(const std::string& what, std::size_t column)
      : ConvergenceError(what), column_(column) {}

  // Unknown-vector index of the zero pivot (post-permutation elimination
  // column, which equals the unknown index for the column ordering used here).
  std::size_t column() const { return column_; }

 private:
  std::size_t column_;
};

}  // namespace oxmlc::num
