// Hierarchical bordered-block-diagonal LU: per-block factorization plus a
// dense Schur complement on the coupling border.
//
// 1T-1R array Jacobians are naturally bordered-block-diagonal — each column's
// cell stack (access transistor, OxRAM cell, BL ladder, termination sense
// chain) couples to the rest of the array only through a handful of shared
// unknowns (SL/WL ladder taps, vdd, driver branch currents). Partitioning the
// unknowns into K interior blocks plus that small border B turns one
// O((n·m)³)-ish monolithic factorization into K independent block
// factorizations plus a dense solve on |B| unknowns:
//
//     [ A_1          B_1 ] [x_1]   [b_1]
//     [      ...     ... ] [...] = [...]        S = D - Σ_k C_k A_k⁻¹ B_k
//     [          A_K B_K ] [x_K]   [b_K]        S y = b_B - Σ_k C_k A_k⁻¹ b_k
//     [ C_1  ... C_K  D  ] [ y ]   [b_B]        x_k = A_k⁻¹ (b_k - B_k y)
//
// Each block reuses the pattern-cached LinearSolver (dense below the cutoff,
// SparseLu numeric-only refactorize above it), so per-Newton-iteration cost is
// K cheap refactorizes plus a |B|³ dense factor. B_k touches only a few border
// columns per block (its column supports J_k), so forming C_k A_k⁻¹ B_k takes
// |J_k| block solves, not |B|.
//
// DETERMINISM CONTRACT (parallel_for, see util/parallel_for.hpp): the
// per-block factor/solve loops write only into per-block storage indexed by
// the block id — no shared accumulation happens in parallel. Every
// floating-point reduction that crosses blocks (Schur assembly, border RHS)
// runs sequentially in ascending block order, so results are bit-identical at
// any thread count.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "numeric/dense_matrix.hpp"
#include "numeric/sparse_lu.hpp"
#include "numeric/sparse_matrix.hpp"

namespace oxmlc::num {

// Block membership of every unknown. Entry i is either kBorder or the interior
// block id in [0, blocks). A valid partition has no matrix entry coupling two
// distinct interior blocks — all cross-block coupling must route through the
// border (BlockSchurLu::factorize_cached throws otherwise).
struct BlockPartition {
  static constexpr std::int32_t kBorder = -1;

  std::vector<std::int32_t> block_of;
  std::size_t blocks = 0;

  std::size_t size() const { return block_of.size(); }
  bool empty() const { return block_of.empty(); }

  // Throws InvalidArgumentError on out-of-range block ids.
  void validate() const;
};

struct SchurOptions {
  // Workers for the per-block factor/solve loops (0 = hardware concurrency).
  // Results are bit-identical regardless; see the determinism contract above.
  std::size_t threads = 1;
  // Pivot tolerance for the dense border factorization.
  double pivot_tol = 1e-14;
};

class BlockSchurLu {
 public:
  BlockSchurLu(BlockPartition partition, const SchurOptions& options);

  const BlockPartition& partition() const { return partition_; }
  std::size_t size() const { return partition_.block_of.size(); }
  std::size_t border_size() const { return border_.size(); }
  std::size_t block_count() const { return blocks_.size(); }

  // Splits the triplets into per-block A_k/B_k/C_k plus the border D,
  // factors every block (pattern-cached: numeric-only refactorize on
  // repeats), forms the dense Schur complement and factors it. Throws
  // InvalidArgumentError when an entry couples two distinct interior blocks,
  // SingularMatrixError (with the *global* unknown index and the block id in
  // the message) when a block or the border is singular.
  void factorize_cached(const TripletMatrix& triplets);

  // Solves A x = b with the stored factors.
  void solve(std::span<const double> b, std::span<double> x);

  bool factorized() const { return factorized_; }

  // True when the last factorize_cached() reused every block's frozen
  // pattern (numeric-only refactorize or dense rebuild) with no fallback —
  // the hierarchical analogue of LinearSolver::last_refactorized().
  bool last_refactorized() const { return last_refactorized_; }

 private:
  struct Block {
    std::vector<std::size_t> globals;      // global unknown of local i, ascending
    TripletMatrix a;                       // interior coupling, local indices
    std::vector<Triplet> b;                // (local row, border-local col, value)
    std::vector<Triplet> c;                // (border-local row, local col, value)
    std::vector<std::size_t> border_cols;  // sorted unique border cols in b
    LinearSolver solver;
    std::vector<double> z;    // A_k⁻¹ B_k on border_cols, column-major n×|J_k|
    std::vector<double> rhs;  // per-block scratch (never shared across blocks)
    std::vector<double> sol;
    bool pattern_hit = false;
    bool fallback = false;
    std::int64_t factor_ns = 0;  // for the parallel-efficiency gauge
  };

  void build_structure();
  void split(const TripletMatrix& triplets);
  void factor_block(std::size_t k);

  BlockPartition partition_;
  SchurOptions options_;

  std::vector<std::size_t> border_;  // global unknowns of border slots, ascending
  std::vector<std::size_t> local_;   // global -> block-local or border-local index
  std::vector<Block> blocks_;

  DenseMatrix schur_;  // D, then S = D - Σ C_k A_k⁻¹ B_k
  DenseLu schur_lu_;
  std::vector<double> border_rhs_;
  std::vector<double> border_y_;

  bool structure_built_ = false;
  bool factorized_ = false;
  bool had_prior_factorize_ = false;
  bool last_refactorized_ = false;
};

}  // namespace oxmlc::num
