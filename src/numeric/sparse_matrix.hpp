// Sparse matrix assembly for MNA.
//
// Devices stamp (row, col, value) triplets into a `TripletMatrix`; the solver
// coalesces duplicates into CSR once per Newton iteration. A key property for
// circuit simulation: the sparsity *pattern* is fixed by the topology, so after
// the first assembly the triplet buffer is reused and only values change.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "numeric/dense_matrix.hpp"

namespace oxmlc::num {

struct Triplet {
  std::size_t row;
  std::size_t col;
  double value;
};

class TripletMatrix {
 public:
  explicit TripletMatrix(std::size_t n = 0) : n_(n) {}

  void resize(std::size_t n) { n_ = n; }
  std::size_t size() const { return n_; }

  void clear() { entries_.clear(); }
  void reserve(std::size_t nnz) { entries_.reserve(nnz); }

  // Accumulative stamp: duplicates are summed at compression time.
  void add(std::size_t row, std::size_t col, double value);

  std::span<const Triplet> entries() const { return entries_; }

 private:
  std::size_t n_ = 0;
  std::vector<Triplet> entries_;
};

// Compressed sparse row with sorted, coalesced columns.
class CsrMatrix {
 public:
  CsrMatrix() = default;

  // Builds structure + values from triplets (duplicates summed).
  static CsrMatrix from_triplets(const TripletMatrix& triplets);

  std::size_t size() const { return n_; }
  std::size_t nnz() const { return values_.size(); }

  std::span<const std::size_t> row_offsets() const { return row_offsets_; }
  std::span<const std::size_t> col_indices() const { return col_indices_; }
  std::span<const double> values() const { return values_; }

  // y = A x
  void multiply(std::span<const double> x, std::span<double> y) const;

  DenseMatrix to_dense() const;

 private:
  std::size_t n_ = 0;
  std::vector<std::size_t> row_offsets_;
  std::vector<std::size_t> col_indices_;
  std::vector<double> values_;
};

}  // namespace oxmlc::num
