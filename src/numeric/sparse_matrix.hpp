// Sparse matrix assembly for MNA.
//
// Devices stamp (row, col, value) triplets into a `TripletMatrix`; the solver
// coalesces duplicates into CSR once per Newton iteration. A key property for
// circuit simulation: the sparsity *pattern* is fixed by the topology, so after
// the first assembly the triplet buffer is reused and only values change.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "numeric/dense_matrix.hpp"

namespace oxmlc::num {

struct Triplet {
  std::size_t row;
  std::size_t col;
  double value;
};

class TripletMatrix {
 public:
  explicit TripletMatrix(std::size_t n = 0) : n_(n) {}

  void resize(std::size_t n) { n_ = n; }
  std::size_t size() const { return n_; }

  void clear() { entries_.clear(); }
  void reserve(std::size_t nnz) { entries_.reserve(nnz); }

  // Accumulative stamp: duplicates are summed at compression time.
  void add(std::size_t row, std::size_t col, double value);

  std::span<const Triplet> entries() const { return entries_; }

 private:
  std::size_t n_ = 0;
  std::vector<Triplet> entries_;
};

// Compressed sparse row with sorted, coalesced columns.
class CsrMatrix {
 public:
  CsrMatrix() = default;

  // Builds structure + values from triplets (duplicates summed).
  static CsrMatrix from_triplets(const TripletMatrix& triplets);

  std::size_t size() const { return n_; }
  std::size_t nnz() const { return values_.size(); }

  std::span<const std::size_t> row_offsets() const { return row_offsets_; }
  std::span<const std::size_t> col_indices() const { return col_indices_; }
  std::span<const double> values() const { return values_; }

  // Mutable view of the value array for pattern-reusing assembly (the
  // structure — row offsets and column indices — stays frozen).
  std::span<double> values_mut() { return values_; }

  // Index into values() of entry (row, col), or npos when absent from the
  // pattern.
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);
  std::size_t value_index(std::size_t row, std::size_t col) const;

  // y = A x
  void multiply(std::span<const double> x, std::span<double> y) const;

  DenseMatrix to_dense() const;

 private:
  std::size_t n_ = 0;
  std::vector<std::size_t> row_offsets_;
  std::vector<std::size_t> col_indices_;
  std::vector<double> values_;
};

// Pattern-cached triplet→CSR compression.
//
// Circuit Jacobians are re-stamped every Newton iteration with an identical
// sequence of (row, col) contributions — only the values move. After the
// first compression this workspace records that stamp sequence and the CSR
// value slot each entry lands in; while the sequence repeats, compress() is a
// positional O(nnz) scatter with no sort and no allocation. Any deviation
// (topology change, analysis-mode switch, value-dependent stamp skipping)
// falls back to a full sort+coalesce rebuild and re-records the map, so
// results are always identical to CsrMatrix::from_triplets.
class CsrWorkspace {
 public:
  // Compresses `triplets`, reusing the cached pattern when possible. The
  // returned reference stays valid until the next compress() call.
  const CsrMatrix& compress(const TripletMatrix& triplets);

  // True when the previous compress() reused the cached pattern.
  bool last_was_hit() const { return last_was_hit_; }

  // Drops the cached pattern; the next compress() rebuilds.
  void invalidate() { valid_ = false; }

 private:
  struct Slot {
    std::size_t row;
    std::size_t col;
    std::size_t value_index;  // into csr_.values()
  };

  CsrMatrix csr_;
  std::vector<Slot> slots_;  // recorded stamp sequence, in triplet order
  bool valid_ = false;
  bool last_was_hit_ = false;
};

}  // namespace oxmlc::num
