#include "numeric/sparse_matrix.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace oxmlc::num {

void TripletMatrix::add(std::size_t row, std::size_t col, double value) {
  OXMLC_CHECK(row < n_ && col < n_, "TripletMatrix::add index out of range");
  if (value == 0.0) return;
  entries_.push_back({row, col, value});
}

CsrMatrix CsrMatrix::from_triplets(const TripletMatrix& triplets) {
  CsrMatrix m;
  m.n_ = triplets.size();

  // Sort a copy of the triplets by (row, col), then coalesce.
  std::vector<Triplet> sorted(triplets.entries().begin(), triplets.entries().end());
  std::sort(sorted.begin(), sorted.end(), [](const Triplet& a, const Triplet& b) {
    return a.row != b.row ? a.row < b.row : a.col < b.col;
  });

  m.row_offsets_.assign(m.n_ + 1, 0);
  m.col_indices_.reserve(sorted.size());
  m.values_.reserve(sorted.size());

  std::size_t i = 0;
  for (std::size_t row = 0; row < m.n_; ++row) {
    m.row_offsets_[row] = m.col_indices_.size();
    while (i < sorted.size() && sorted[i].row == row) {
      const std::size_t col = sorted[i].col;
      double sum = 0.0;
      while (i < sorted.size() && sorted[i].row == row && sorted[i].col == col) {
        sum += sorted[i].value;
        ++i;
      }
      m.col_indices_.push_back(col);
      m.values_.push_back(sum);
    }
  }
  m.row_offsets_[m.n_] = m.col_indices_.size();
  return m;
}

void CsrMatrix::multiply(std::span<const double> x, std::span<double> y) const {
  OXMLC_CHECK(x.size() == n_ && y.size() == n_, "CsrMatrix::multiply size mismatch");
  for (std::size_t r = 0; r < n_; ++r) {
    double s = 0.0;
    for (std::size_t k = row_offsets_[r]; k < row_offsets_[r + 1]; ++k) {
      s += values_[k] * x[col_indices_[k]];
    }
    y[r] = s;
  }
}

DenseMatrix CsrMatrix::to_dense() const {
  DenseMatrix d(n_, n_);
  for (std::size_t r = 0; r < n_; ++r) {
    for (std::size_t k = row_offsets_[r]; k < row_offsets_[r + 1]; ++k) {
      d.at(r, col_indices_[k]) = values_[k];
    }
  }
  return d;
}

}  // namespace oxmlc::num
