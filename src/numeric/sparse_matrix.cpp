#include "numeric/sparse_matrix.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace oxmlc::num {

void TripletMatrix::add(std::size_t row, std::size_t col, double value) {
  OXMLC_CHECK(row < n_ && col < n_, "TripletMatrix::add index out of range");
  if (value == 0.0) return;
  entries_.push_back({row, col, value});
}

CsrMatrix CsrMatrix::from_triplets(const TripletMatrix& triplets) {
  CsrMatrix m;
  m.n_ = triplets.size();

  // Sort a copy of the triplets by (row, col), then coalesce.
  std::vector<Triplet> sorted(triplets.entries().begin(), triplets.entries().end());
  std::sort(sorted.begin(), sorted.end(), [](const Triplet& a, const Triplet& b) {
    return a.row != b.row ? a.row < b.row : a.col < b.col;
  });

  m.row_offsets_.assign(m.n_ + 1, 0);
  m.col_indices_.reserve(sorted.size());
  m.values_.reserve(sorted.size());

  std::size_t i = 0;
  for (std::size_t row = 0; row < m.n_; ++row) {
    m.row_offsets_[row] = m.col_indices_.size();
    while (i < sorted.size() && sorted[i].row == row) {
      const std::size_t col = sorted[i].col;
      double sum = 0.0;
      while (i < sorted.size() && sorted[i].row == row && sorted[i].col == col) {
        sum += sorted[i].value;
        ++i;
      }
      m.col_indices_.push_back(col);
      m.values_.push_back(sum);
    }
  }
  m.row_offsets_[m.n_] = m.col_indices_.size();
  return m;
}

void CsrMatrix::multiply(std::span<const double> x, std::span<double> y) const {
  OXMLC_CHECK(x.size() == n_ && y.size() == n_, "CsrMatrix::multiply size mismatch");
  for (std::size_t r = 0; r < n_; ++r) {
    double s = 0.0;
    for (std::size_t k = row_offsets_[r]; k < row_offsets_[r + 1]; ++k) {
      s += values_[k] * x[col_indices_[k]];
    }
    y[r] = s;
  }
}

std::size_t CsrMatrix::value_index(std::size_t row, std::size_t col) const {
  OXMLC_CHECK(row < n_, "CsrMatrix::value_index row out of range");
  const auto begin = col_indices_.begin() + static_cast<std::ptrdiff_t>(row_offsets_[row]);
  const auto end = col_indices_.begin() + static_cast<std::ptrdiff_t>(row_offsets_[row + 1]);
  const auto it = std::lower_bound(begin, end, col);
  if (it == end || *it != col) return npos;
  return static_cast<std::size_t>(it - col_indices_.begin());
}

const CsrMatrix& CsrWorkspace::compress(const TripletMatrix& triplets) {
  const auto entries = triplets.entries();

  bool hit = valid_ && triplets.size() == csr_.size() && entries.size() == slots_.size();
  if (hit) {
    for (std::size_t k = 0; k < entries.size(); ++k) {
      if (entries[k].row != slots_[k].row || entries[k].col != slots_[k].col) {
        hit = false;
        break;
      }
    }
  }

  if (hit) {
    const auto values = csr_.values_mut();
    std::fill(values.begin(), values.end(), 0.0);
    for (std::size_t k = 0; k < entries.size(); ++k) {
      values[slots_[k].value_index] += entries[k].value;
    }
  } else {
    csr_ = CsrMatrix::from_triplets(triplets);
    slots_.resize(entries.size());
    for (std::size_t k = 0; k < entries.size(); ++k) {
      const std::size_t idx = csr_.value_index(entries[k].row, entries[k].col);
      OXMLC_CHECK(idx != CsrMatrix::npos, "CsrWorkspace: triplet missing from CSR");
      slots_[k] = {entries[k].row, entries[k].col, idx};
    }
    valid_ = true;
  }
  last_was_hit_ = hit;
  return csr_;
}

DenseMatrix CsrMatrix::to_dense() const {
  DenseMatrix d(n_, n_);
  for (std::size_t r = 0; r < n_; ++r) {
    for (std::size_t k = row_offsets_[r]; k < row_offsets_[r + 1]; ++k) {
      d.at(r, col_indices_[k]) = values_[k];
    }
  }
  return d;
}

}  // namespace oxmlc::num
