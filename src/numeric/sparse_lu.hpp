// Sparse LU factorization with partial pivoting (right-looking, row-based,
// Gilbert–Peierls-style scatter/gather updates).
//
// Circuit MNA matrices are extremely sparse and close to banded once the
// parasitic RC ladders dominate the node count; this factorization keeps fill
// proportional to the bandwidth, which makes kilobyte-array simulations with
// hundreds of ladder nodes cheap.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "numeric/sparse_matrix.hpp"

namespace oxmlc::num {

class SparseLu {
 public:
  // Factorizes A (throws ConvergenceError when numerically singular).
  void factorize(const CsrMatrix& a, double pivot_tol = 1e-14);

  // Solves A x = b with the stored factors.
  void solve(std::span<const double> b, std::span<double> x) const;

  bool factorized() const { return n_ > 0; }
  std::size_t size() const { return n_; }
  std::size_t fill_nnz() const;

 private:
  struct Entry {
    std::size_t col;
    double value;
  };

  std::size_t n_ = 0;
  std::vector<std::size_t> perm_;               // row permutation: solve uses b[perm_[r]]
  std::vector<std::vector<Entry>> lower_;       // strictly lower triangle, per row, sorted
  std::vector<std::vector<Entry>> upper_;       // upper incl. diagonal, per row, sorted
};

// Facade selecting the dense or sparse factorization by system size. The MNA
// assembler talks only to this interface.
class LinearSolver {
 public:
  // Systems at or below this size use dense LU (faster for tiny matrices).
  static constexpr std::size_t kDenseCutoff = 96;

  void factorize(const TripletMatrix& triplets);
  void solve(std::span<const double> b, std::span<double> x) const;
  bool factorized() const { return dense_active_ ? dense_.factorized() : sparse_.factorized(); }

 private:
  bool dense_active_ = true;
  DenseLu dense_;
  SparseLu sparse_;
};

}  // namespace oxmlc::num
