// Sparse LU factorization with partial pivoting (right-looking, row-based,
// Gilbert–Peierls-style scatter/gather updates) and a two-phase hot path:
// once a matrix has been factorized, its sparsity pattern, fill-in and pivot
// order are frozen by a symbolic analysis, and subsequent same-pattern
// matrices take a numeric-only refactorize() that skips pivot search and
// pattern discovery entirely.
//
// Circuit MNA matrices are extremely sparse and close to banded once the
// parasitic RC ladders dominate the node count; crucially their pattern is
// *fixed* by the topology, so every Newton iteration of every timestep
// re-factorizes the same structure with new values — the exact workload the
// symbolic/numeric split accelerates.
#pragma once

#include <cstddef>
#include <memory>
#include <span>
#include <vector>

#include "numeric/dense_matrix.hpp"
#include "numeric/sparse_matrix.hpp"

namespace oxmlc::num {

// Hierarchical bordered-block solver (schur_lu.hpp); LinearSolver routes to it
// when a partition is installed via set_partition().
class BlockSchurLu;
struct BlockPartition;
struct SchurOptions;

class SparseLu {
 public:
  // Full factorization of A: fresh partial pivoting, pattern discovery
  // (throws SingularMatrixError when numerically singular). Freezes the
  // pattern and pivot order for later refactorize() calls.
  void factorize(const CsrMatrix& a, double pivot_tol = 1e-14);

  // Numeric-only refactorization: reuses the pivot order and the structural
  // fill pattern frozen by the last successful factorize(). Returns false —
  // leaving the stored factors invalid until the caller runs a full
  // factorize() — when
  //   (a) A's sparsity pattern differs from the frozen one, or
  //   (b) a pivot degrades below `pivot_tol` absolutely or below
  //       `degrade_ratio` times the largest magnitude in its eliminated row
  //       (the frozen order would amplify roundoff past acceptable growth).
  // Never throws for numerical reasons: the fallback full factorize()
  // re-pivots and is the one to diagnose genuine singularity.
  bool refactorize(const CsrMatrix& a, double pivot_tol = 1e-14,
                   double degrade_ratio = 1e-8);

  // Solves A x = b with the stored factors.
  void solve(std::span<const double> b, std::span<double> x) const;

  bool factorized() const { return n_ > 0; }
  std::size_t size() const { return n_; }
  std::size_t fill_nnz() const { return l_cols_.size() + u_cols_.size(); }

 private:
  // Symbolic phase: structural (no-cancellation) elimination of A's pattern
  // under the frozen row permutation; rebuilds the L/U patterns as a superset
  // of any numeric factorization with those pivots, so refactorize() can
  // never overflow the frozen fill.
  void analyze(const CsrMatrix& a);
  bool pattern_matches(const CsrMatrix& a) const;

  std::size_t n_ = 0;
  std::vector<std::size_t> perm_;  // row permutation: solve uses b[perm_[r]]

  // Factors in flat CSR-style storage. L is strictly lower triangular with
  // unit diagonal (not stored); U rows are sorted ascending and start at the
  // diagonal entry.
  std::vector<std::size_t> l_offsets_, l_cols_;
  std::vector<double> l_values_;
  std::vector<std::size_t> u_offsets_, u_cols_;
  std::vector<double> u_values_;
  std::vector<double> u_diag_;  // U(i, i), duplicated for O(1) access

  // Frozen input pattern (keyed against refactorize() arguments) and the
  // symbolic-analysis state.
  bool analyzed_ = false;
  std::vector<std::size_t> a_offsets_, a_cols_;

  // Persistent elimination scratch (avoids per-call allocation).
  std::vector<double> work_;
};

// Facade selecting the dense or sparse factorization by system size. The MNA
// assembler talks only to this interface.
class LinearSolver {
 public:
  // Systems at or below this size use dense LU (faster for tiny matrices).
  static constexpr std::size_t kDenseCutoff = 96;

  LinearSolver();
  ~LinearSolver();
  LinearSolver(LinearSolver&&) noexcept;
  LinearSolver& operator=(LinearSolver&&) noexcept;

  // Installs a bordered-block partition: factorize()/factorize_cached()/solve()
  // route through a BlockSchurLu over it instead of the monolithic paths. The
  // partition size must match every subsequent system. clear_partition()
  // returns to monolithic solves.
  void set_partition(const BlockPartition& partition, const SchurOptions& options);
  void clear_partition();
  bool partitioned() const { return schur_ != nullptr; }

  // Stateless path: fresh CSR build + fully pivoted factorization.
  void factorize(const TripletMatrix& triplets);

  // Hot path for repeated same-pattern factorizations (Newton iterations,
  // timestepping): pattern-cached CSR assembly feeding SparseLu::refactorize,
  // with automatic fallback to a full factorize() on a pattern change or
  // pivot degradation. Results are identical to factorize() up to the
  // row-ordering of the elimination (same solutions to machine precision on
  // the refactorize path, bit-identical on the fallback path).
  void factorize_cached(const TripletMatrix& triplets);

  void solve(std::span<const double> b, std::span<double> x) const;
  bool factorized() const;

  // True when the last factorize_cached() took the numeric-only refactorize
  // path (callers use this to count newton.refactorizations).
  bool last_refactorized() const { return last_refactorized_; }

  // True when the last factorize_cached() attempted a numeric-only
  // refactorize but had to fall back to a full factorize (pattern mismatch or
  // pivot degradation). BlockSchurLu reads this to count per-block fallbacks.
  bool last_fallback() const { return last_fallback_; }

 private:
  bool dense_active_ = true;
  bool hier_active_ = false;  // last factorize went through schur_
  DenseLu dense_;
  SparseLu sparse_;
  DenseMatrix dense_buffer_;  // reused dense assembly target
  CsrWorkspace assembly_;     // pattern-cached triplet→CSR compression
  std::unique_ptr<BlockSchurLu> schur_;
  bool last_refactorized_ = false;
  bool last_fallback_ = false;
};

}  // namespace oxmlc::num
