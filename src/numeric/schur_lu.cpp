#include "numeric/schur_lu.hpp"

#include <algorithm>
#include <chrono>
#include <string>

#include "numeric/linear_error.hpp"
#include "obs/registry.hpp"
#include "util/error.hpp"
#include "util/parallel_for.hpp"

namespace oxmlc::num {
namespace {

struct SchurMetrics {
  obs::Counter& factorizations = obs::registry().counter("schur.factorizations");
  obs::Counter& solves = obs::registry().counter("schur.solves");
  obs::Counter& blocks_factored = obs::registry().counter("schur.blocks_factored");
  obs::Counter& block_refactorize_hits =
      obs::registry().counter("schur.block_refactorize_hits");
  obs::Counter& block_fallbacks =
      obs::registry().counter("sparse_lu.schur_block_refactorize_fallbacks");
  obs::Gauge& border_size = obs::registry().gauge("schur.border_size");
  obs::Gauge& blocks = obs::registry().gauge("schur.blocks");
  obs::Gauge& parallel_efficiency =
      obs::registry().gauge("schur.parallel_efficiency");

  static SchurMetrics& get() {
    static SchurMetrics metrics;
    return metrics;
  }
};

std::int64_t now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

void BlockPartition::validate() const {
  for (std::size_t i = 0; i < block_of.size(); ++i) {
    const std::int32_t b = block_of[i];
    if (b == kBorder) continue;
    if (b < 0 || static_cast<std::size_t>(b) >= blocks) {
      throw InvalidArgumentError(
          "BlockPartition: unknown " + std::to_string(i) + " assigned to block " +
          std::to_string(b) + " outside [0, " + std::to_string(blocks) + ")");
    }
  }
}

BlockSchurLu::BlockSchurLu(BlockPartition partition, const SchurOptions& options)
    : partition_(std::move(partition)), options_(options) {
  OXMLC_CHECK(partition_.blocks > 0, "BlockSchurLu: partition needs >= 1 block");
  partition_.validate();
  build_structure();
}

void BlockSchurLu::build_structure() {
  const std::size_t n = partition_.block_of.size();
  local_.assign(n, 0);
  border_.clear();
  blocks_.clear();
  blocks_.resize(partition_.blocks);

  for (std::size_t i = 0; i < n; ++i) {
    const std::int32_t b = partition_.block_of[i];
    if (b == BlockPartition::kBorder) {
      local_[i] = border_.size();
      border_.push_back(i);
    } else {
      Block& blk = blocks_[static_cast<std::size_t>(b)];
      local_[i] = blk.globals.size();
      blk.globals.push_back(i);
    }
  }
  for (Block& blk : blocks_) blk.a.resize(blk.globals.size());

  schur_ = DenseMatrix(border_.size(), border_.size());
  border_rhs_.assign(border_.size(), 0.0);
  border_y_.assign(border_.size(), 0.0);
  structure_built_ = true;
}

void BlockSchurLu::split(const TripletMatrix& triplets) {
  for (Block& blk : blocks_) {
    blk.a.clear();
    blk.b.clear();
    blk.c.clear();
  }
  schur_.set_zero();

  const auto& bo = partition_.block_of;
  for (const Triplet& t : triplets.entries()) {
    const std::int32_t br = bo[t.row];
    const std::int32_t bc = bo[t.col];
    if (br == BlockPartition::kBorder && bc == BlockPartition::kBorder) {
      schur_.add(local_[t.row], local_[t.col], t.value);
    } else if (br == bc) {
      blocks_[static_cast<std::size_t>(br)].a.add(local_[t.row], local_[t.col],
                                                  t.value);
    } else if (bc == BlockPartition::kBorder) {
      blocks_[static_cast<std::size_t>(br)].b.push_back(
          {local_[t.row], local_[t.col], t.value});
    } else if (br == BlockPartition::kBorder) {
      blocks_[static_cast<std::size_t>(bc)].c.push_back(
          {local_[t.row], local_[t.col], t.value});
    } else {
      throw InvalidArgumentError(
          "BlockSchurLu: matrix entry (" + std::to_string(t.row) + ", " +
          std::to_string(t.col) + ") couples interior block " +
          std::to_string(br) + " to block " + std::to_string(bc) +
          "; cross-block coupling must go through the border — partition invalid");
    }
  }

  // Column supports J_k: the border columns each block actually touches.
  for (Block& blk : blocks_) {
    blk.border_cols.clear();
    for (const Triplet& t : blk.b) blk.border_cols.push_back(t.col);
    std::sort(blk.border_cols.begin(), blk.border_cols.end());
    blk.border_cols.erase(
        std::unique(blk.border_cols.begin(), blk.border_cols.end()),
        blk.border_cols.end());
  }
}

void BlockSchurLu::factor_block(std::size_t k) {
  Block& blk = blocks_[k];
  const std::size_t n = blk.globals.size();
  blk.pattern_hit = false;
  blk.fallback = false;
  blk.factor_ns = 0;
  if (n == 0) return;

  const std::int64_t t0 = now_ns();
  try {
    blk.solver.factorize_cached(blk.a);
  } catch (const SingularMatrixError& e) {
    const std::size_t global =
        e.column() < n ? blk.globals[e.column()] : blk.globals.front();
    throw SingularMatrixError(
        "BlockSchurLu: interior block " + std::to_string(k) +
            " singular at block-local column " + std::to_string(e.column()) +
            " (global unknown " + std::to_string(global) + "): " + e.what(),
        global);
  }
  // Dense blocks rebuild cheaply every call; only the sparse path
  // distinguishes refactorize hits, so count dense as a hit.
  blk.pattern_hit =
      blk.solver.last_refactorized() || n <= LinearSolver::kDenseCutoff;
  blk.fallback = blk.solver.last_fallback();

  // Z = A_k⁻¹ B_k restricted to the touched border columns.
  blk.z.assign(blk.border_cols.size() * n, 0.0);
  blk.rhs.assign(n, 0.0);
  blk.sol.assign(n, 0.0);
  for (std::size_t j = 0; j < blk.border_cols.size(); ++j) {
    const std::size_t jb = blk.border_cols[j];
    std::fill(blk.rhs.begin(), blk.rhs.end(), 0.0);
    for (const Triplet& t : blk.b) {
      if (t.col == jb) blk.rhs[t.row] += t.value;
    }
    blk.solver.solve(blk.rhs, std::span<double>(blk.z).subspan(j * n, n));
  }
  blk.factor_ns = now_ns() - t0;
}

void BlockSchurLu::factorize_cached(const TripletMatrix& triplets) {
  OXMLC_CHECK(triplets.size() == partition_.block_of.size(),
              "BlockSchurLu: system size does not match the partition");
  SchurMetrics& metrics = SchurMetrics::get();

  split(triplets);

  // Parallel per-block phase: each block writes only its own state.
  const std::int64_t wall0 = now_ns();
  util::ParallelForOptions popt;
  popt.threads = options_.threads;
  popt.chunk = 1;
  util::parallel_for(blocks_.size(), popt,
                     [&](std::size_t begin, std::size_t end) {
                       for (std::size_t k = begin; k < end; ++k) factor_block(k);
                     });
  const std::int64_t wall_ns = now_ns() - wall0;

  // Sequential cross-block phase, ascending block order: S = D - Σ C_k Z_k.
  for (const Block& blk : blocks_) {
    const std::size_t n = blk.globals.size();
    for (const Triplet& t : blk.c) {
      for (std::size_t j = 0; j < blk.border_cols.size(); ++j) {
        schur_.add(t.row, blk.border_cols[j], -t.value * blk.z[j * n + t.col]);
      }
    }
  }

  if (!border_.empty()) {
    try {
      schur_lu_.factorize(schur_, options_.pivot_tol);
    } catch (const SingularMatrixError& e) {
      const std::size_t global =
          e.column() < border_.size() ? border_[e.column()] : border_.front();
      throw SingularMatrixError(
          "BlockSchurLu: border Schur complement singular at border column " +
              std::to_string(e.column()) + " (global unknown " +
              std::to_string(global) + "): " + e.what(),
          global);
    }
  }

  std::size_t hits = 0;
  std::size_t fallbacks = 0;
  std::int64_t block_ns = 0;
  for (const Block& blk : blocks_) {
    if (blk.pattern_hit) ++hits;
    if (blk.fallback) ++fallbacks;
    block_ns += blk.factor_ns;
  }
  last_refactorized_ = had_prior_factorize_ && hits == blocks_.size() && fallbacks == 0;
  had_prior_factorize_ = true;
  factorized_ = true;

  metrics.factorizations.add();
  metrics.blocks_factored.add(blocks_.size());
  metrics.block_refactorize_hits.add(hits);
  if (fallbacks > 0) metrics.block_fallbacks.add(fallbacks);
  metrics.border_size.set(static_cast<double>(border_.size()));
  metrics.blocks.set(static_cast<double>(blocks_.size()));
  const std::size_t workers =
      util::resolve_threads(options_.threads, blocks_.size());
  if (wall_ns > 0 && workers > 0) {
    metrics.parallel_efficiency.set(
        static_cast<double>(block_ns) /
        (static_cast<double>(wall_ns) * static_cast<double>(workers)));
  }
}

void BlockSchurLu::solve(std::span<const double> b, std::span<double> x) {
  OXMLC_CHECK(factorized_, "BlockSchurLu::solve before factorize");
  OXMLC_CHECK(b.size() == size() && x.size() == size(),
              "BlockSchurLu::solve size mismatch");
  SchurMetrics& metrics = SchurMetrics::get();

  util::ParallelForOptions popt;
  popt.threads = options_.threads;
  popt.chunk = 1;

  // Interior forward solves g_k = A_k⁻¹ b_k (parallel, per-block storage).
  util::parallel_for(blocks_.size(), popt,
                     [&](std::size_t begin, std::size_t end) {
                       for (std::size_t k = begin; k < end; ++k) {
                         Block& blk = blocks_[k];
                         const std::size_t n = blk.globals.size();
                         if (n == 0) continue;
                         blk.rhs.resize(n);
                         blk.sol.resize(n);
                         for (std::size_t i = 0; i < n; ++i) {
                           blk.rhs[i] = b[blk.globals[i]];
                         }
                         blk.solver.solve(blk.rhs, blk.sol);
                       }
                     });

  // Border RHS, sequential in ascending block order.
  for (std::size_t i = 0; i < border_.size(); ++i) border_rhs_[i] = b[border_[i]];
  for (const Block& blk : blocks_) {
    for (const Triplet& t : blk.c) {
      border_rhs_[t.row] -= t.value * blk.sol[t.col];
    }
  }
  if (!border_.empty()) {
    schur_lu_.solve(border_rhs_, border_y_);
  }

  // Interior back-substitution x_k = A_k⁻¹ (b_k - B_k y) (parallel). Rather
  // than a second triangular solve, reuse Z: x_k = g_k - Σ_j y_j Z_k[:, j].
  util::parallel_for(blocks_.size(), popt,
                     [&](std::size_t begin, std::size_t end) {
                       for (std::size_t k = begin; k < end; ++k) {
                         Block& blk = blocks_[k];
                         const std::size_t n = blk.globals.size();
                         if (n == 0) continue;
                         for (std::size_t j = 0; j < blk.border_cols.size(); ++j) {
                           const double yj = border_y_[blk.border_cols[j]];
                           if (yj == 0.0) continue;
                           const double* zcol = blk.z.data() + j * n;
                           for (std::size_t i = 0; i < n; ++i) {
                             blk.sol[i] -= yj * zcol[i];
                           }
                         }
                         for (std::size_t i = 0; i < n; ++i) {
                           x[blk.globals[i]] = blk.sol[i];
                         }
                       }
                     });

  for (std::size_t i = 0; i < border_.size(); ++i) x[border_[i]] = border_y_[i];
  metrics.solves.add();
}

}  // namespace oxmlc::num
