#include "numeric/complex_lu.hpp"

#include <cmath>

#include "numeric/linear_error.hpp"
#include "util/error.hpp"

namespace oxmlc::num {

void ComplexLu::factorize(const ComplexDenseMatrix& a, double pivot_tol) {
  OXMLC_CHECK(a.rows() == a.cols(), "ComplexLu: matrix must be square");
  n_ = a.rows();
  lu_ = a;
  perm_.resize(n_);
  for (std::size_t i = 0; i < n_; ++i) perm_[i] = i;

  for (std::size_t k = 0; k < n_; ++k) {
    std::size_t pivot_row = k;
    double pivot_mag = std::abs(lu_.at(k, k));
    for (std::size_t r = k + 1; r < n_; ++r) {
      const double mag = std::abs(lu_.at(r, k));
      if (mag > pivot_mag) {
        pivot_mag = mag;
        pivot_row = r;
      }
    }
    if (pivot_mag < pivot_tol) {
      throw SingularMatrixError(
          "ComplexLu: numerically singular matrix at column " + std::to_string(k), k);
    }
    if (pivot_row != k) {
      for (std::size_t c = 0; c < n_; ++c) std::swap(lu_.at(k, c), lu_.at(pivot_row, c));
      std::swap(perm_[k], perm_[pivot_row]);
    }
    const Complex inv_pivot = 1.0 / lu_.at(k, k);
    for (std::size_t r = k + 1; r < n_; ++r) {
      const Complex factor = lu_.at(r, k) * inv_pivot;
      if (factor == Complex{}) continue;
      lu_.at(r, k) = factor;
      for (std::size_t c = k + 1; c < n_; ++c) {
        lu_.at(r, c) -= factor * lu_.at(k, c);
      }
    }
  }
}

void ComplexLu::solve(std::span<const Complex> b, std::span<Complex> x) const {
  OXMLC_CHECK(factorized(), "ComplexLu::solve before factorize");
  OXMLC_CHECK(b.size() == n_ && x.size() == n_, "ComplexLu::solve size mismatch");
  for (std::size_t r = 0; r < n_; ++r) {
    Complex s = b[perm_[r]];
    for (std::size_t c = 0; c < r; ++c) s -= lu_.at(r, c) * x[c];
    x[r] = s;
  }
  for (std::size_t ri = n_; ri-- > 0;) {
    Complex s = x[ri];
    for (std::size_t c = ri + 1; c < n_; ++c) s -= lu_.at(ri, c) * x[c];
    x[ri] = s / lu_.at(ri, ri);
  }
}

}  // namespace oxmlc::num
