// Explicit ODE integration with event detection, used by the fast (non-MNA)
// OxRAM cell path: the filament-state equation is a stiff-ish scalar ODE whose
// right-hand side is cheap, so adaptive RK with step rejection is ideal.
//
// Event detection matters here: the RESET write-termination fires when the
// cell current crosses the reference current, and the reported latency/energy
// depend on locating that crossing accurately (bisection refinement).
#pragma once

#include <cstddef>
#include <functional>
#include <limits>
#include <span>
#include <vector>

namespace oxmlc::num {

// dy/dt = f(t, y). `dydt` is pre-sized to y.size().
using OdeRhs = std::function<void(double t, std::span<const double> y, std::span<double> dydt)>;

// Scalar event function g(t, y); integration stops when g crosses zero from
// positive to negative (the convention used by the termination comparator:
// g = Icell - IrefR).
using OdeEvent = std::function<double(double t, std::span<const double> y)>;

struct OdeOptions {
  double initial_step = 1e-9;
  double min_step = 1e-18;
  // No cap by default: the error controller sizes steps. Circuit-scale
  // callers set an explicit cap when they need dense event sampling.
  double max_step = std::numeric_limits<double>::infinity();
  double rel_tol = 1e-6;
  double abs_tol = 1e-12;
  // Event-time localization: when a crossing is detected inside a step wider
  // than this, the step is retried smaller instead of interpolated. Negative
  // means auto (1e-6 of the integration span).
  double event_time_tol = -1.0;
  // When set, the dense output trajectory is recorded every `record_interval`
  // seconds (0 = record every accepted step).
  double record_interval = 0.0;
  bool record_trajectory = true;
  std::size_t max_steps = 2'000'000;
};

struct OdeResult {
  bool event_fired = false;
  double end_time = 0.0;               // time reached (event time if fired)
  std::vector<double> end_state;
  // Recorded trajectory (empty when record_trajectory is false).
  std::vector<double> times;
  std::vector<std::vector<double>> states;
  std::size_t steps_taken = 0;
  std::size_t steps_rejected = 0;
};

// Integrates from (t0, y0) to t_end with the Cash–Karp RK45 embedded pair,
// optionally stopping at the first +→− zero crossing of `event` (refined by
// bisection to ~1e-3 * step accuracy in time).
OdeResult integrate_rk45(const OdeRhs& rhs, double t0, double t_end,
                         std::span<const double> y0, const OdeOptions& options = {},
                         const OdeEvent& event = nullptr);

// Fixed-step classical RK4; used in tests as an independent cross-check.
OdeResult integrate_rk4(const OdeRhs& rhs, double t0, double t_end,
                        std::span<const double> y0, double step,
                        const OdeEvent& event = nullptr);

}  // namespace oxmlc::num
