#include "numeric/ode.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace oxmlc::num {
namespace {

// Cash–Karp coefficients for the embedded RK4(5) pair.
constexpr double kA2 = 0.2, kA3 = 0.3, kA4 = 0.6, kA5 = 1.0, kA6 = 0.875;
constexpr double kB21 = 0.2;
constexpr double kB31 = 3.0 / 40.0, kB32 = 9.0 / 40.0;
constexpr double kB41 = 0.3, kB42 = -0.9, kB43 = 1.2;
constexpr double kB51 = -11.0 / 54.0, kB52 = 2.5, kB53 = -70.0 / 27.0, kB54 = 35.0 / 27.0;
constexpr double kB61 = 1631.0 / 55296.0, kB62 = 175.0 / 512.0, kB63 = 575.0 / 13824.0,
                 kB64 = 44275.0 / 110592.0, kB65 = 253.0 / 4096.0;
constexpr double kC1 = 37.0 / 378.0, kC3 = 250.0 / 621.0, kC4 = 125.0 / 594.0,
                 kC6 = 512.0 / 1771.0;
constexpr double kD1 = kC1 - 2825.0 / 27648.0, kD3 = kC3 - 18575.0 / 48384.0,
                 kD4 = kC4 - 13525.0 / 55296.0, kD5 = -277.0 / 14336.0,
                 kD6 = kC6 - 0.25;

struct StepWorkspace {
  std::vector<double> k1, k2, k3, k4, k5, k6, y_tmp, y_new, y_err;

  explicit StepWorkspace(std::size_t n)
      : k1(n), k2(n), k3(n), k4(n), k5(n), k6(n), y_tmp(n), y_new(n), y_err(n) {}
};

// One Cash–Karp step from (t, y) with size h; fills ws.y_new and ws.y_err.
void cash_karp_step(const OdeRhs& rhs, double t, std::span<const double> y, double h,
                    StepWorkspace& ws) {
  const std::size_t n = y.size();
  rhs(t, y, ws.k1);
  for (std::size_t i = 0; i < n; ++i) ws.y_tmp[i] = y[i] + h * kB21 * ws.k1[i];
  rhs(t + kA2 * h, ws.y_tmp, ws.k2);
  for (std::size_t i = 0; i < n; ++i)
    ws.y_tmp[i] = y[i] + h * (kB31 * ws.k1[i] + kB32 * ws.k2[i]);
  rhs(t + kA3 * h, ws.y_tmp, ws.k3);
  for (std::size_t i = 0; i < n; ++i)
    ws.y_tmp[i] = y[i] + h * (kB41 * ws.k1[i] + kB42 * ws.k2[i] + kB43 * ws.k3[i]);
  rhs(t + kA4 * h, ws.y_tmp, ws.k4);
  for (std::size_t i = 0; i < n; ++i)
    ws.y_tmp[i] = y[i] + h * (kB51 * ws.k1[i] + kB52 * ws.k2[i] + kB53 * ws.k3[i] +
                              kB54 * ws.k4[i]);
  rhs(t + kA5 * h, ws.y_tmp, ws.k5);
  for (std::size_t i = 0; i < n; ++i)
    ws.y_tmp[i] = y[i] + h * (kB61 * ws.k1[i] + kB62 * ws.k2[i] + kB63 * ws.k3[i] +
                              kB64 * ws.k4[i] + kB65 * ws.k5[i]);
  rhs(t + kA6 * h, ws.y_tmp, ws.k6);
  for (std::size_t i = 0; i < n; ++i) {
    ws.y_new[i] = y[i] + h * (kC1 * ws.k1[i] + kC3 * ws.k3[i] + kC4 * ws.k4[i] +
                              kC6 * ws.k6[i]);
    ws.y_err[i] = h * (kD1 * ws.k1[i] + kD3 * ws.k3[i] + kD4 * ws.k4[i] +
                       kD5 * ws.k5[i] + kD6 * ws.k6[i]);
  }
}

// Refines the event time within [t_lo, t_hi] by bisection on interpolated
// states (linear interpolation is adequate: the bracket is one step wide and
// shrinks geometrically).
double refine_event(const OdeEvent& event, double t_lo, std::span<const double> y_lo,
                    double t_hi, std::span<const double> y_hi,
                    std::vector<double>& y_event) {
  const std::size_t n = y_lo.size();
  double lo = t_lo, hi = t_hi;
  std::vector<double> y_mid(n);
  for (int iter = 0; iter < 60 && (hi - lo) > 1e-15 + 1e-12 * hi; ++iter) {
    const double mid = 0.5 * (lo + hi);
    const double w = (mid - t_lo) / (t_hi - t_lo);
    for (std::size_t i = 0; i < n; ++i) y_mid[i] = (1.0 - w) * y_lo[i] + w * y_hi[i];
    if (event(mid, y_mid) > 0.0) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  const double w = (hi - t_lo) / (t_hi - t_lo);
  y_event.resize(n);
  for (std::size_t i = 0; i < n; ++i) y_event[i] = (1.0 - w) * y_lo[i] + w * y_hi[i];
  return hi;
}

}  // namespace

OdeResult integrate_rk45(const OdeRhs& rhs, double t0, double t_end,
                         std::span<const double> y0, const OdeOptions& options,
                         const OdeEvent& event) {
  OXMLC_CHECK(t_end > t0, "integrate_rk45: t_end must exceed t0");
  OXMLC_CHECK(!y0.empty(), "integrate_rk45: empty state");

  const std::size_t n = y0.size();
  StepWorkspace ws(n);
  std::vector<double> y(y0.begin(), y0.end());
  double t = t0;
  double h = std::min(options.initial_step, t_end - t0);

  OdeResult result;
  double last_recorded = t0;
  auto record = [&](double time, const std::vector<double>& state) {
    if (!options.record_trajectory) return;
    if (!result.times.empty() && options.record_interval > 0.0 &&
        time - last_recorded < options.record_interval && time < t_end) {
      return;
    }
    result.times.push_back(time);
    result.states.push_back(state);
    last_recorded = time;
  };
  record(t, y);

  double g_prev = event ? event(t, y) : 1.0;
  const double event_tol = options.event_time_tol >= 0.0
                               ? options.event_time_tol
                               : 1e-6 * (t_end - t0);

  while (t < t_end) {
    if (result.steps_taken + result.steps_rejected > options.max_steps) {
      throw ConvergenceError("integrate_rk45: step budget exhausted");
    }
    h = std::min(h, t_end - t);
    cash_karp_step(rhs, t, y, h, ws);

    // Error norm against mixed tolerance.
    double err = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const double scale =
          options.abs_tol + options.rel_tol * std::max(std::fabs(y[i]), std::fabs(ws.y_new[i]));
      err = std::max(err, std::fabs(ws.y_err[i]) / scale);
    }

    if (err > 1.0 && h > options.min_step) {
      // Reject: shrink (standard 0.2 exponent safety rule).
      ++result.steps_rejected;
      h = std::max(options.min_step, 0.9 * h * std::pow(err, -0.25));
      continue;
    }

    const double t_new = t + h;
    ++result.steps_taken;

    if (event) {
      const double g_new = event(t_new, ws.y_new);
      if (g_prev > 0.0 && g_new <= 0.0) {
        // Localize by re-stepping: shrink the bracket geometrically so the
        // final linear interpolation acts on a near-linear segment.
        if (h > event_tol && h > 4.0 * options.min_step) {
          ++result.steps_rejected;
          h = std::max(options.min_step, 0.25 * h);
          continue;
        }
        std::vector<double> y_event;
        const double t_event = refine_event(event, t, y, t_new, ws.y_new, y_event);
        record(t_event, y_event);
        result.event_fired = true;
        result.end_time = t_event;
        result.end_state = std::move(y_event);
        return result;
      }
      g_prev = g_new;
    }

    y.assign(ws.y_new.begin(), ws.y_new.end());
    t = t_new;
    record(t, y);

    // Grow the step (capped) when error is small.
    const double growth = err > 0.0 ? 0.9 * std::pow(err, -0.2) : 5.0;
    h = std::min(options.max_step, h * std::clamp(growth, 0.2, 5.0));
    h = std::max(h, options.min_step);
  }

  result.end_time = t;
  result.end_state = std::move(y);
  return result;
}

OdeResult integrate_rk4(const OdeRhs& rhs, double t0, double t_end,
                        std::span<const double> y0, double step, const OdeEvent& event) {
  OXMLC_CHECK(step > 0.0, "integrate_rk4: step must be positive");
  const std::size_t n = y0.size();
  std::vector<double> y(y0.begin(), y0.end());
  std::vector<double> k1(n), k2(n), k3(n), k4(n), tmp(n);

  OdeResult result;
  result.times.push_back(t0);
  result.states.push_back(y);

  double t = t0;
  double g_prev = event ? event(t, y) : 1.0;
  while (t < t_end) {
    const double h = std::min(step, t_end - t);
    rhs(t, y, k1);
    for (std::size_t i = 0; i < n; ++i) tmp[i] = y[i] + 0.5 * h * k1[i];
    rhs(t + 0.5 * h, tmp, k2);
    for (std::size_t i = 0; i < n; ++i) tmp[i] = y[i] + 0.5 * h * k2[i];
    rhs(t + 0.5 * h, tmp, k3);
    for (std::size_t i = 0; i < n; ++i) tmp[i] = y[i] + h * k3[i];
    rhs(t + h, tmp, k4);

    std::vector<double> y_new(n);
    for (std::size_t i = 0; i < n; ++i) {
      y_new[i] = y[i] + h / 6.0 * (k1[i] + 2.0 * k2[i] + 2.0 * k3[i] + k4[i]);
    }
    const double t_new = t + h;
    ++result.steps_taken;

    if (event) {
      const double g_new = event(t_new, y_new);
      if (g_prev > 0.0 && g_new <= 0.0) {
        std::vector<double> y_event;
        const double t_event = refine_event(event, t, y, t_new, y_new, y_event);
        result.times.push_back(t_event);
        result.states.push_back(y_event);
        result.event_fired = true;
        result.end_time = t_event;
        result.end_state = std::move(y_event);
        return result;
      }
      g_prev = g_new;
    }

    y = std::move(y_new);
    t = t_new;
    result.times.push_back(t);
    result.states.push_back(y);
  }

  result.end_time = t;
  result.end_state = std::move(y);
  return result;
}

}  // namespace oxmlc::num
