// Small vector helpers shared by the linear and nonlinear solvers.
#pragma once

#include <cmath>
#include <cstddef>
#include <span>
#include <vector>

#include "util/error.hpp"

namespace oxmlc::num {

inline double dot(std::span<const double> a, std::span<const double> b) {
  OXMLC_CHECK(a.size() == b.size(), "dot: size mismatch");
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

inline double norm_inf(std::span<const double> a) {
  double m = 0.0;
  for (double v : a) m = std::max(m, std::fabs(v));
  return m;
}

inline double norm2(std::span<const double> a) { return std::sqrt(dot(a, a)); }

// y += alpha * x
inline void axpy(double alpha, std::span<const double> x, std::span<double> y) {
  OXMLC_CHECK(x.size() == y.size(), "axpy: size mismatch");
  for (std::size_t i = 0; i < x.size(); ++i) y[i] += alpha * x[i];
}

// Weighted RMS norm used for convergence checks: each component is scaled by
// (rel_tol * |reference_i| + abs_tol). A value <= 1 means "converged".
inline double weighted_rms(std::span<const double> delta, std::span<const double> reference,
                           double rel_tol, double abs_tol) {
  OXMLC_CHECK(delta.size() == reference.size(), "weighted_rms: size mismatch");
  if (delta.empty()) return 0.0;
  double sum = 0.0;
  for (std::size_t i = 0; i < delta.size(); ++i) {
    const double w = rel_tol * std::fabs(reference[i]) + abs_tol;
    const double r = delta[i] / w;
    sum += r * r;
  }
  return std::sqrt(sum / static_cast<double>(delta.size()));
}

}  // namespace oxmlc::num
