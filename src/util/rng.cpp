#include "util/rng.hpp"

#include <cmath>

#include "util/error.hpp"

namespace oxmlc {
namespace {

// SplitMix64: used only for seeding / stream derivation.
std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t s = seed;
  for (auto& word : state_) word = splitmix64(s);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 high bits -> double in [0,1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

std::uint64_t Rng::uniform_index(std::uint64_t n) {
  OXMLC_CHECK(n > 0, "uniform_index requires n > 0");
  // Debiased multiply-shift (Lemire).
  while (true) {
    const std::uint64_t x = next_u64();
    const __uint128_t m = static_cast<__uint128_t>(x) * n;
    const std::uint64_t lo = static_cast<std::uint64_t>(m);
    if (lo >= n) return static_cast<std::uint64_t>(m >> 64);
    const std::uint64_t threshold = (0ULL - n) % n;
    if (lo >= threshold) return static_cast<std::uint64_t>(m >> 64);
  }
}

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  // Marsaglia polar method.
  double u = 0.0, v = 0.0, s = 0.0;
  do {
    u = uniform(-1.0, 1.0);
    v = uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  cached_normal_ = v * factor;
  has_cached_normal_ = true;
  return u * factor;
}

double Rng::normal(double mean, double sigma) { return mean + sigma * normal(); }

double Rng::lognormal(double mu, double sigma) { return std::exp(normal(mu, sigma)); }

double Rng::truncated_normal(double mean, double sigma, double lo, double hi) {
  OXMLC_CHECK(lo < hi, "truncated_normal requires lo < hi");
  if (sigma <= 0.0) {
    return mean < lo ? lo : (mean > hi ? hi : mean);
  }
  for (int attempt = 0; attempt < 10000; ++attempt) {
    const double x = normal(mean, sigma);
    if (x >= lo && x <= hi) return x;
  }
  // Distribution mass inside [lo,hi] is vanishing; clamp rather than loop.
  const double x = normal(mean, sigma);
  return x < lo ? lo : (x > hi ? hi : x);
}

Rng Rng::split() {
  // Derive a child seed from two raw draws; SplitMix64 in the constructor
  // whitens it into a full 256-bit state.
  const std::uint64_t a = next_u64();
  const std::uint64_t b = next_u64();
  return Rng(a ^ rotl(b, 32) ^ 0xD1B54A32D192ED03ULL);
}

}  // namespace oxmlc
