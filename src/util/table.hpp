// Tabular output for the benchmark harness: aligned text tables (what the
// bench binaries print to stdout, mirroring the paper's tables) and CSV files
// (machine-readable series for re-plotting the figures).
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace oxmlc {

// A simple column-aligned table builder.
//
//   Table t({"IrefR (uA)", "RHRS (kOhm)"});
//   t.add_row({"6", "267"});
//   t.print(std::cout);
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  // Appends a row; must have the same arity as the header.
  void add_row(std::vector<std::string> cells);

  // Convenience: formats doubles with `precision` significant digits.
  void add_row_values(const std::vector<double>& values, int precision = 4);

  std::size_t row_count() const { return rows_.size(); }

  // Renders with box-drawing separators, right-aligned numeric-looking cells.
  void print(std::ostream& os) const;

  // Writes RFC-4180-ish CSV (quotes cells containing comma/quote/newline).
  void write_csv(std::ostream& os) const;
  void write_csv_file(const std::string& path) const;

  // Renders a GitHub-flavoured Markdown table.
  void print_markdown(std::ostream& os) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

// Formats a double in engineering notation with an SI prefix, e.g.
// format_si(2.6e-6, "s") == "2.600 us"; format_si(152e3, "Ohm") == "152.0 kOhm".
std::string format_si(double value, const std::string& unit, int significant_digits = 4);

// Fixed formatting helper: value scaled by `scale` printed with `digits`
// decimals, e.g. format_scaled(1.52e5, 1e3, 1) == "152.0".
std::string format_scaled(double value, double scale, int digits);

}  // namespace oxmlc
