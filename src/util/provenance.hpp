// Build provenance for machine-readable artifacts.
//
// Every BENCH_*.json the harness emits carries a `provenance` object (git
// SHA, compiler, flags, build type) so the CI perf gate
// (scripts/compare_bench.py) can tell apart a real regression from an
// apples-to-oranges comparison — numbers measured under different flags or
// compilers are flagged, not silently diffed. Values are injected at
// configure time via target_compile_definitions on this one translation
// unit (see src/util/CMakeLists.txt), so a SHA change rebuilds a single .o.
#pragma once

#include <string>

namespace oxmlc::util {

// Short git SHA of HEAD at configure time ("unknown" outside a checkout).
// Configure-time, not commit-time: a dirty tree or commits made without
// re-running CMake can lag; CI always configures fresh so its artifacts are
// exact.
const std::string& build_git_sha();

// Compiler id and version, e.g. "GNU 12.2.0".
const std::string& build_compiler();

// The CXX flags the build actually used (base + build-type), plus the
// OXMLC_NATIVE marker when the native/fast-math perf configuration is on.
const std::string& build_flags();

// CMAKE_BUILD_TYPE, e.g. "Release".
const std::string& build_type();

// The whole provenance block as a JSON object string (no trailing newline):
//   {"git_sha": "...", "compiler": "...", "flags": "...", "build_type": "..."}
std::string provenance_json();

}  // namespace oxmlc::util
