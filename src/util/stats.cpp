#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/error.hpp"

namespace oxmlc {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const auto n_total = static_cast<double>(n_ + other.n_);
  const double new_mean = mean_ + delta * static_cast<double>(other.n_) / n_total;
  m2_ += other.m2_ + delta * delta * static_cast<double>(n_) *
                         static_cast<double>(other.n_) / n_total;
  mean_ = new_mean;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  n_ += other.n_;
}

double RunningStats::mean() const {
  OXMLC_CHECK(n_ > 0, "mean of empty sample");
  return mean_;
}

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::min() const {
  OXMLC_CHECK(n_ > 0, "min of empty sample");
  return min_;
}

double RunningStats::max() const {
  OXMLC_CHECK(n_ > 0, "max of empty sample");
  return max_;
}

double quantile(std::span<const double> sorted_values, double q) {
  OXMLC_CHECK(q >= 0.0 && q <= 1.0, "quantile level must be in [0,1]");
  if (sorted_values.empty()) {
    // An empty sample has no quantiles; NaN propagates visibly through any
    // downstream arithmetic where a throw would abort a whole sweep.
    return std::numeric_limits<double>::quiet_NaN();
  }
  const std::size_t n = sorted_values.size();
  if (n == 1) return sorted_values[0];
  const double pos = q * static_cast<double>(n - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, n - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted_values[lo] + frac * (sorted_values[hi] - sorted_values[lo]);
}

std::vector<double> quantiles(std::span<const double> values, std::span<const double> qs) {
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  std::vector<double> out;
  out.reserve(qs.size());
  for (double q : qs) out.push_back(quantile(sorted, q));
  return out;
}

BoxPlotSummary box_plot_summary(std::span<const double> values) {
  if (values.empty()) {
    BoxPlotSummary s;
    const double nan = std::numeric_limits<double>::quiet_NaN();
    s.minimum = s.q1 = s.median = s.q3 = s.maximum = nan;
    s.whisker_low = s.whisker_high = s.mean = s.stddev = nan;
    return s;
  }
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());

  BoxPlotSummary s;
  s.count = sorted.size();
  s.minimum = sorted.front();
  s.maximum = sorted.back();
  s.q1 = quantile(sorted, 0.25);
  s.median = quantile(sorted, 0.50);
  s.q3 = quantile(sorted, 0.75);

  RunningStats rs;
  for (double v : sorted) rs.add(v);
  s.mean = rs.mean();
  s.stddev = rs.stddev();

  const double iqr = s.q3 - s.q1;
  const double fence_low = s.q1 - 1.5 * iqr;
  const double fence_high = s.q3 + 1.5 * iqr;
  s.whisker_low = s.maximum;
  s.whisker_high = s.minimum;
  for (double v : sorted) {
    if (v >= fence_low) {
      s.whisker_low = v;
      break;
    }
  }
  for (auto it = sorted.rbegin(); it != sorted.rend(); ++it) {
    if (*it <= fence_high) {
      s.whisker_high = *it;
      break;
    }
  }
  for (double v : sorted) {
    if (v < fence_low || v > fence_high) s.outliers.push_back(v);
  }
  return s;
}

EmpiricalCdf empirical_cdf(std::span<const double> values) {
  EmpiricalCdf cdf;  // empty sample -> empty curve (nothing to plot, no UB)
  cdf.x.assign(values.begin(), values.end());
  std::sort(cdf.x.begin(), cdf.x.end());
  cdf.p.resize(cdf.x.size());
  const auto n = static_cast<double>(cdf.x.size());
  for (std::size_t i = 0; i < cdf.x.size(); ++i) {
    cdf.p[i] = static_cast<double>(i + 1) / n;
  }
  return cdf;
}

double Histogram::bin_width() const {
  return counts.empty() ? 0.0 : (hi - lo) / static_cast<double>(counts.size());
}

double Histogram::bin_center(std::size_t i) const {
  return lo + (static_cast<double>(i) + 0.5) * bin_width();
}

Histogram histogram(std::span<const double> values, double lo, double hi, std::size_t bins) {
  OXMLC_CHECK(hi > lo, "histogram range must be non-empty");
  OXMLC_CHECK(bins > 0, "histogram needs at least one bin");
  Histogram h;
  h.lo = lo;
  h.hi = hi;
  h.counts.assign(bins, 0);
  const double width = (hi - lo) / static_cast<double>(bins);
  for (double v : values) {
    auto idx = static_cast<long>(std::floor((v - lo) / width));
    if (idx < 0) idx = 0;
    if (idx >= static_cast<long>(bins)) idx = static_cast<long>(bins) - 1;
    ++h.counts[static_cast<std::size_t>(idx)];
  }
  return h;
}

LinearFit linear_fit(std::span<const double> x, std::span<const double> y) {
  OXMLC_CHECK(x.size() == y.size(), "linear_fit: size mismatch");
  OXMLC_CHECK(x.size() >= 2, "linear_fit: need at least two points");
  const auto n = static_cast<double>(x.size());
  double sx = 0.0, sy = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    sx += x[i];
    sy += y[i];
  }
  const double mx = sx / n, my = sy / n;
  double sxx = 0.0, sxy = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double dx = x[i] - mx, dy = y[i] - my;
    sxx += dx * dx;
    sxy += dx * dy;
    syy += dy * dy;
  }
  OXMLC_CHECK(sxx > 0.0, "linear_fit: x values are all identical");
  LinearFit fit;
  fit.slope = sxy / sxx;
  fit.intercept = my - fit.slope * mx;
  fit.r_squared = (syy == 0.0) ? 1.0 : (sxy * sxy) / (sxx * syy);
  return fit;
}

}  // namespace oxmlc
