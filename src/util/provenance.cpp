#include "util/provenance.hpp"

namespace oxmlc::util {
namespace {

#ifndef OXMLC_BUILD_GIT_SHA
#define OXMLC_BUILD_GIT_SHA "unknown"
#endif
#ifndef OXMLC_BUILD_COMPILER
#define OXMLC_BUILD_COMPILER "unknown"
#endif
#ifndef OXMLC_BUILD_FLAGS
#define OXMLC_BUILD_FLAGS ""
#endif
#ifndef OXMLC_BUILD_TYPE
#define OXMLC_BUILD_TYPE ""
#endif

// Flags come straight out of CMake variables; escape the characters that can
// legally appear there (quotes in -D definitions, backslashes on exotic
// toolchains) so the emitted JSON stays parseable.
std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

}  // namespace

const std::string& build_git_sha() {
  static const std::string sha = OXMLC_BUILD_GIT_SHA;
  return sha;
}

const std::string& build_compiler() {
  static const std::string compiler = OXMLC_BUILD_COMPILER;
  return compiler;
}

const std::string& build_flags() {
  static const std::string flags = OXMLC_BUILD_FLAGS;
  return flags;
}

const std::string& build_type() {
  static const std::string type = OXMLC_BUILD_TYPE;
  return type;
}

std::string provenance_json() {
  return "{\"git_sha\": \"" + json_escape(build_git_sha()) + "\", \"compiler\": \"" +
         json_escape(build_compiler()) + "\", \"flags\": \"" +
         json_escape(build_flags()) + "\", \"build_type\": \"" +
         json_escape(build_type()) + "\"}";
}

}  // namespace oxmlc::util
