// Terminal rendering of the paper's figures. Each bench binary prints both a
// machine-readable CSV and one of these ASCII charts so the figure's *shape*
// (monotonicity, crossover, spread) is visible directly in the test log.
#pragma once

#include <iosfwd>
#include <span>
#include <string>
#include <vector>

#include "util/stats.hpp"

namespace oxmlc {

enum class AxisScale { kLinear, kLog10 };

struct SeriesStyle {
  std::string label;
  char marker = '*';
};

// One named (x, y) series of a line/scatter chart.
struct Series {
  SeriesStyle style;
  std::vector<double> x;
  std::vector<double> y;
};

struct PlotOptions {
  std::string title;
  std::string x_label;
  std::string y_label;
  int width = 72;    // plot area columns
  int height = 20;   // plot area rows
  AxisScale x_scale = AxisScale::kLinear;
  AxisScale y_scale = AxisScale::kLinear;
};

// Scatter/line chart: plots every point of every series on a character grid
// with axis ticks and a legend. Log axes skip non-positive samples.
void plot_series(std::ostream& os, std::span<const Series> series, const PlotOptions& options);

// Horizontal box-and-whisker lanes (one per category), as in Figs. 11/13.
struct BoxLane {
  std::string label;
  BoxPlotSummary summary;
};

struct BoxPlotOptions {
  std::string title;
  std::string value_label;
  int width = 72;
  AxisScale scale = AxisScale::kLinear;
};

void plot_boxes(std::ostream& os, std::span<const BoxLane> lanes, const BoxPlotOptions& options);

// Vertical bar chart for histograms / per-level scalars.
struct BarChartOptions {
  std::string title;
  std::string value_label;
  int width = 60;
};

void plot_bars(std::ostream& os, std::span<const std::string> labels,
               std::span<const double> values, const BarChartOptions& options);

}  // namespace oxmlc
