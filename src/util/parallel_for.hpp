// One shared chunk-claiming task pool for every data-parallel loop in the
// repo: the Monte-Carlo trial runner (mc::run_trials), CellBatch lane
// sharding, and the retention sweep all schedule through here instead of
// carrying three bespoke thread pools.
//
// Scheduling model. The index space [0, n) is split into fixed-size chunks;
// workers claim contiguous chunks off an atomic cursor until the space is
// exhausted. Which worker executes which chunk is nondeterministic — so the
// DETERMINISM CONTRACT is on the body, not the pool:
//
//   The result of processing index i must depend on i (and captured
//   read-only state) alone — never on the executing thread, the chunk
//   boundaries, or what other indices ran before it. Randomized bodies
//   derive their stream from a (seed, index) function (mc::trial_rng is the
//   canonical one); per-worker contexts are allocation caches, not channels.
//
// Under that contract results are bit-identical for any thread count and any
// chunk size, which the parallel_for determinism suite pins for all three
// migrated call sites at 1, 2 and 8 threads.
//
// Error handling: a throwing body (or context factory) aborts the run —
// in-flight chunks finish, no new chunks are claimed, and the first exception
// is rethrown on the caller after the pool joins. The pool itself records no
// telemetry (util sits below obs in the layering); call sites instrument
// their own counters inside the body.
#pragma once

#include <atomic>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace oxmlc::util {

struct ParallelForOptions {
  std::size_t threads = 0;  // 0 = hardware_concurrency (min 1); capped at n
  std::size_t chunk = 0;    // indices per claim; 0 = auto (~8 chunks/worker)
};

// Worker count actually used for `items` work items: `requested` (or
// hardware_concurrency when 0), capped at the item count, floor 1.
std::size_t resolve_threads(std::size_t requested, std::size_t items);

// Chunk size actually used: `requested`, or when 0 aim for ~8 chunks per
// worker — large enough that a per-worker context is reused across many
// items and the claim counter stays cold, small enough that one straggler
// chunk cannot idle the rest of the pool.
std::size_t resolve_chunk(std::size_t requested, std::size_t items, std::size_t threads);

// Runs body(begin, end, context) over [0, n) in claimed chunks. make_context
// builds one context per worker (reused across all chunks that worker
// claims); the single-threaded path builds one context and visits the same
// chunk boundaries in order.
template <typename Context>
void parallel_for(std::size_t n, const ParallelForOptions& options,
                  const std::function<Context()>& make_context,
                  const std::function<void(std::size_t, std::size_t, Context&)>& body) {
  if (n == 0) return;
  const std::size_t threads = resolve_threads(options.threads, n);
  const std::size_t chunk = resolve_chunk(options.chunk, n, threads);

  if (threads <= 1) {
    Context context = make_context();
    for (std::size_t begin = 0; begin < n; begin += chunk) {
      body(begin, std::min(begin + chunk, n), context);
    }
    return;
  }

  std::atomic<std::size_t> cursor{0};
  std::atomic<bool> failed{false};
  std::exception_ptr first_error;
  std::mutex error_mutex;

  const auto record_failure = [&] {
    const std::lock_guard<std::mutex> lock(error_mutex);
    if (!first_error) first_error = std::current_exception();
    failed.store(true, std::memory_order_release);
  };

  std::vector<std::thread> pool;
  pool.reserve(threads);
  for (std::size_t t = 0; t < threads; ++t) {
    pool.emplace_back([&] {
      try {
        Context context = make_context();
        while (!failed.load(std::memory_order_acquire)) {
          const std::size_t begin = cursor.fetch_add(chunk, std::memory_order_relaxed);
          if (begin >= n) break;
          body(begin, std::min(begin + chunk, n), context);
        }
      } catch (...) {
        record_failure();
      }
    });
  }
  for (std::thread& worker : pool) worker.join();
  if (first_error) std::rethrow_exception(first_error);
}

// Context-free convenience overload: body(begin, end).
void parallel_for(std::size_t n, const ParallelForOptions& options,
                  const std::function<void(std::size_t, std::size_t)>& body);

}  // namespace oxmlc::util
