#include "util/ascii_plot.hpp"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <limits>
#include <ostream>
#include <sstream>

#include "util/error.hpp"
#include "util/table.hpp"

namespace oxmlc {
namespace {

struct AxisMap {
  double lo = 0.0;
  double hi = 1.0;
  AxisScale scale = AxisScale::kLinear;

  double transform(double v) const {
    return scale == AxisScale::kLog10 ? std::log10(v) : v;
  }

  bool usable(double v) const { return scale != AxisScale::kLog10 || v > 0.0; }

  // Maps value -> [0,1]; caller guarantees usable(v).
  double unit(double v) const {
    const double t = transform(v);
    if (hi == lo) return 0.5;
    return (t - lo) / (hi - lo);
  }

  // Inverse of unit(): [0,1] -> value, for tick labels.
  double value_at(double u) const {
    const double t = lo + u * (hi - lo);
    return scale == AxisScale::kLog10 ? std::pow(10.0, t) : t;
  }
};

AxisMap fit_axis(std::span<const double> values, AxisScale scale) {
  AxisMap m;
  m.scale = scale;
  double lo = std::numeric_limits<double>::infinity();
  double hi = -std::numeric_limits<double>::infinity();
  for (double v : values) {
    if (!m.usable(v) || !std::isfinite(v)) continue;
    const double t = m.transform(v);
    lo = std::min(lo, t);
    hi = std::max(hi, t);
  }
  if (!std::isfinite(lo)) {
    lo = 0.0;
    hi = 1.0;
  }
  if (hi == lo) {
    // Widen a degenerate range so a flat series still renders mid-plot.
    const double pad = (scale == AxisScale::kLog10) ? 0.5 : (lo == 0.0 ? 1.0 : std::fabs(lo) * 0.1);
    lo -= pad;
    hi += pad;
  }
  m.lo = lo;
  m.hi = hi;
  return m;
}

std::string tick_text(double v) {
  std::ostringstream os;
  const double mag = std::fabs(v);
  if (v != 0.0 && (mag >= 1e5 || mag < 1e-3)) {
    os << std::scientific << std::setprecision(1) << v;
  } else {
    os << std::setprecision(4) << v;
  }
  return os.str();
}

}  // namespace

void plot_series(std::ostream& os, std::span<const Series> series, const PlotOptions& options) {
  OXMLC_CHECK(!series.empty(), "plot_series needs at least one series");
  OXMLC_CHECK(options.width >= 16 && options.height >= 4, "plot area too small");

  std::vector<double> all_x, all_y;
  for (const auto& s : series) {
    OXMLC_CHECK(s.x.size() == s.y.size(), "series x/y size mismatch: " + s.style.label);
    all_x.insert(all_x.end(), s.x.begin(), s.x.end());
    all_y.insert(all_y.end(), s.y.begin(), s.y.end());
  }
  const AxisMap xm = fit_axis(all_x, options.x_scale);
  const AxisMap ym = fit_axis(all_y, options.y_scale);

  const int w = options.width, h = options.height;
  std::vector<std::string> grid(static_cast<std::size_t>(h), std::string(static_cast<std::size_t>(w), ' '));

  for (const auto& s : series) {
    for (std::size_t i = 0; i < s.x.size(); ++i) {
      if (!xm.usable(s.x[i]) || !ym.usable(s.y[i])) continue;
      if (!std::isfinite(s.x[i]) || !std::isfinite(s.y[i])) continue;
      const double ux = xm.unit(s.x[i]);
      const double uy = ym.unit(s.y[i]);
      if (ux < 0.0 || ux > 1.0 || uy < 0.0 || uy > 1.0) continue;
      const int col = std::min(w - 1, static_cast<int>(ux * (w - 1) + 0.5));
      const int row = std::min(h - 1, static_cast<int>((1.0 - uy) * (h - 1) + 0.5));
      grid[static_cast<std::size_t>(row)][static_cast<std::size_t>(col)] = s.style.marker;
    }
  }

  if (!options.title.empty()) os << options.title << '\n';
  // Legend.
  os << "  legend:";
  for (const auto& s : series) os << "  '" << s.style.marker << "' = " << s.style.label;
  os << '\n';

  const int label_w = 11;
  for (int row = 0; row < h; ++row) {
    std::string ylab;
    if (row == 0 || row == h - 1 || row == h / 2) {
      const double u = 1.0 - static_cast<double>(row) / (h - 1);
      ylab = tick_text(ym.value_at(u));
    }
    os << std::setw(label_w) << ylab << " |" << grid[static_cast<std::size_t>(row)] << '\n';
  }
  os << std::string(static_cast<std::size_t>(label_w + 1), ' ') << '+'
     << std::string(static_cast<std::size_t>(w), '-') << '\n';

  // X tick labels at left/mid/right.
  const std::string left = tick_text(xm.value_at(0.0));
  const std::string mid = tick_text(xm.value_at(0.5));
  const std::string right = tick_text(xm.value_at(1.0));
  std::string xline(static_cast<std::size_t>(label_w + 2 + w), ' ');
  const auto place = [&](const std::string& text, int center) {
    int start = center - static_cast<int>(text.size()) / 2;
    start = std::clamp(start, 0, static_cast<int>(xline.size()) - static_cast<int>(text.size()));
    xline.replace(static_cast<std::size_t>(start), text.size(), text);
  };
  place(left, label_w + 2);
  place(mid, label_w + 2 + w / 2);
  place(right, label_w + 1 + w);
  os << xline << '\n';
  if (!options.x_label.empty() || !options.y_label.empty()) {
    os << "  x: " << options.x_label;
    if (options.x_scale == AxisScale::kLog10) os << " [log]";
    os << "   y: " << options.y_label;
    if (options.y_scale == AxisScale::kLog10) os << " [log]";
    os << '\n';
  }
}

void plot_boxes(std::ostream& os, std::span<const BoxLane> lanes, const BoxPlotOptions& options) {
  OXMLC_CHECK(!lanes.empty(), "plot_boxes needs at least one lane");
  std::vector<double> extremes;
  for (const auto& lane : lanes) {
    extremes.push_back(lane.summary.minimum);
    extremes.push_back(lane.summary.maximum);
  }
  const AxisMap m = fit_axis(extremes, options.scale);
  const int w = options.width;

  std::size_t label_w = 0;
  for (const auto& lane : lanes) label_w = std::max(label_w, lane.label.size());

  if (!options.title.empty()) os << options.title << '\n';
  for (const auto& lane : lanes) {
    const auto& s = lane.summary;
    std::string row(static_cast<std::size_t>(w), ' ');
    auto col = [&](double v) {
      if (!m.usable(v)) return 0;
      const double u = std::clamp(m.unit(v), 0.0, 1.0);
      return static_cast<int>(u * (w - 1) + 0.5);
    };
    const int cw_lo = col(s.whisker_low), cq1 = col(s.q1), cmed = col(s.median),
              cq3 = col(s.q3), cw_hi = col(s.whisker_high);
    for (int c = cw_lo; c <= cw_hi; ++c) row[static_cast<std::size_t>(c)] = '-';
    for (int c = cq1; c <= cq3; ++c) row[static_cast<std::size_t>(c)] = '=';
    row[static_cast<std::size_t>(cw_lo)] = '|';
    row[static_cast<std::size_t>(cw_hi)] = '|';
    row[static_cast<std::size_t>(cq1)] = '[';
    row[static_cast<std::size_t>(cq3)] = ']';
    row[static_cast<std::size_t>(cmed)] = '#';
    for (double v : s.outliers) {
      const int c = col(v);
      if (row[static_cast<std::size_t>(c)] == ' ') row[static_cast<std::size_t>(c)] = 'o';
    }
    os << std::setw(static_cast<int>(label_w)) << lane.label << " " << row << '\n';
  }
  os << std::setw(static_cast<int>(label_w)) << "" << " "
     << tick_text(m.value_at(0.0)) << std::string(10, ' ') << "... "
     << options.value_label;
  if (options.scale == AxisScale::kLog10) os << " [log]";
  os << " ... " << tick_text(m.value_at(1.0)) << '\n';
  os << "  ('[' q1, '#' median, ']' q3, '|' whisker, 'o' outlier)\n";
}

void plot_bars(std::ostream& os, std::span<const std::string> labels,
               std::span<const double> values, const BarChartOptions& options) {
  OXMLC_CHECK(labels.size() == values.size(), "plot_bars label/value mismatch");
  OXMLC_CHECK(!values.empty(), "plot_bars needs at least one bar");
  double vmax = 0.0;
  for (double v : values) vmax = std::max(vmax, std::fabs(v));
  if (vmax == 0.0) vmax = 1.0;
  std::size_t label_w = 0;
  for (const auto& l : labels) label_w = std::max(label_w, l.size());
  if (!options.title.empty()) os << options.title << '\n';
  for (std::size_t i = 0; i < values.size(); ++i) {
    const int len = static_cast<int>(std::fabs(values[i]) / vmax * options.width + 0.5);
    os << std::setw(static_cast<int>(label_w)) << labels[i] << " |"
       << std::string(static_cast<std::size_t>(len), '#') << ' '
       << tick_text(values[i]) << '\n';
  }
  if (!options.value_label.empty()) os << "  (" << options.value_label << ")\n";
}

}  // namespace oxmlc
