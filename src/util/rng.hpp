// Deterministic pseudo-random number generation for Monte-Carlo analysis.
//
// We ship our own xoshiro256++ generator instead of std::mt19937 for two
// reasons: (1) reproducibility across standard libraries — distribution
// algorithms in <random> are implementation-defined, ours are pinned; and
// (2) cheap independent streams: `split()` derives a statistically independent
// child stream per Monte-Carlo trial, so multithreaded runs give the same
// samples as sequential runs regardless of scheduling.
#pragma once

#include <array>
#include <cstdint>

namespace oxmlc {

// xoshiro256++ 1.0 by Blackman & Vigna (public domain reference algorithm).
class Rng {
 public:
  // Seeds the state via SplitMix64 so that nearby seeds give unrelated streams.
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL);

  // Raw 64 random bits.
  std::uint64_t next_u64();

  // Uniform double in [0, 1).
  double uniform();

  // Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  // Uniform integer in [0, n). n must be > 0.
  std::uint64_t uniform_index(std::uint64_t n);

  // Standard normal via Marsaglia polar method (pinned algorithm).
  double normal();

  // Normal with given mean and standard deviation.
  double normal(double mean, double sigma);

  // Log-normal: exp(N(mu, sigma)) where mu/sigma parameterize the underlying
  // normal in log space.
  double lognormal(double mu, double sigma);

  // Normal truncated to [lo, hi] by rejection (bounds must bracket >1e-6 of
  // the probability mass; used to keep physical parameters positive).
  double truncated_normal(double mean, double sigma, double lo, double hi);

  // Derives an independent child generator. Deterministic: the i-th split of
  // a generator seeded with S always yields the same child stream.
  Rng split();

 private:
  std::array<std::uint64_t, 4> state_;
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace oxmlc
