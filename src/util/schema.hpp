// Central registry of report schema version strings.
//
// Every machine-readable report the toolchain emits carries a "schema" tag so
// downstream consumers (CI assertions, compare_bench.py, notebook loaders)
// can hard-fail on shape drift instead of silently misreading fields. The
// version strings themselves used to live as ad-hoc literals next to each
// emitter; they are collected here — rank 0, includable from anywhere — and
// pinned by a test so a schema bump is always a deliberate, reviewed edit.
//
// Versioning contract: a tag is append-only frozen. Changing the shape of a
// report means minting "oxmlc.<name>.v<N+1>" here, never mutating the meaning
// of an existing tag.
#pragma once

namespace oxmlc::util {

// obs::MetricsSnapshot JSON/CSV exporter (src/obs/export.hpp).
inline constexpr const char* kMetricsSchema = "oxmlc.metrics.v1";

// Static-analyzer lint reports (src/spice/analyze/diagnostic.hpp). v2 = v1 +
// the OXC0xx configuration-lint code namespace and a top-level "domain" key.
inline constexpr const char* kLintSchema = "oxmlc.lint.v2";

// Monte-Carlo retention study (src/mlc/retention.hpp).
inline constexpr const char* kRetentionSchema = "oxmlc.retention.v1";

// Trace-driven memory-system replay (src/memsys/replay.hpp).
inline constexpr const char* kMemsysSchema = "oxmlc.memsys.v1";

// ECC + scrub + wear-leveling policy explorer (src/ecc/explorer.hpp).
inline constexpr const char* kEccSchema = "oxmlc.ecc.v1";

}  // namespace oxmlc::util
