// Error handling for oxmlc.
//
// Exceptions are used for programmer/configuration errors (bad netlist, bad
// parameters) and for solver failures that the caller is expected to handle
// (non-convergence). Every exception derives from `oxmlc::Error` so callers
// can catch the whole library with one handler.
#pragma once

#include <stdexcept>
#include <string>

namespace oxmlc {

// Base class for all oxmlc exceptions.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

// Malformed input: bad netlist text, unknown device, inconsistent parameters.
class InvalidArgumentError : public Error {
 public:
  explicit InvalidArgumentError(const std::string& what) : Error(what) {}
};

// Numerical failure: singular matrix, Newton divergence, step-size collapse.
class ConvergenceError : public Error {
 public:
  explicit ConvergenceError(const std::string& what) : Error(what) {}
};

// Internal invariant violated; indicates a bug in oxmlc itself.
class InternalError : public Error {
 public:
  explicit InternalError(const std::string& what) : Error(what) {}
};

namespace detail {
[[noreturn]] void throw_check_failed(const char* expr, const char* file, int line,
                                     const std::string& message);
}  // namespace detail

}  // namespace oxmlc

// Precondition / invariant check that throws InvalidArgumentError with context.
// Usage: OXMLC_CHECK(n > 0, "node count must be positive");
#define OXMLC_CHECK(expr, message)                                              \
  do {                                                                          \
    if (!(expr)) {                                                              \
      ::oxmlc::detail::throw_check_failed(#expr, __FILE__, __LINE__, (message)); \
    }                                                                           \
  } while (false)
