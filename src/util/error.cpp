#include "util/error.hpp"

#include <sstream>

namespace oxmlc::detail {

void throw_check_failed(const char* expr, const char* file, int line,
                        const std::string& message) {
  std::ostringstream os;
  os << message << " [check `" << expr << "` failed at " << file << ":" << line << "]";
  throw InvalidArgumentError(os.str());
}

}  // namespace oxmlc::detail
