// Minimal leveled logging. The solver and Monte-Carlo runner log convergence
// diagnostics at kDebug; benches run at kInfo by default.
#pragma once

#include <sstream>
#include <string>

namespace oxmlc {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

// Global threshold; messages below it are discarded. Not thread-synchronized
// by design: it is set once at startup, before worker threads exist.
void set_log_level(LogLevel level);
LogLevel log_level();

namespace detail {
void log_line(LogLevel level, const std::string& message);

class LogStream {
 public:
  explicit LogStream(LogLevel level) : level_(level) {}
  ~LogStream() { log_line(level_, stream_.str()); }
  LogStream(const LogStream&) = delete;
  LogStream& operator=(const LogStream&) = delete;

  template <typename T>
  LogStream& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};
}  // namespace detail

}  // namespace oxmlc

#define OXMLC_LOG(level)                                  \
  if (static_cast<int>(level) < static_cast<int>(::oxmlc::log_level())) { \
  } else                                                  \
    ::oxmlc::detail::LogStream(level)

#define OXMLC_DEBUG OXMLC_LOG(::oxmlc::LogLevel::kDebug)
#define OXMLC_INFO OXMLC_LOG(::oxmlc::LogLevel::kInfo)
#define OXMLC_WARN OXMLC_LOG(::oxmlc::LogLevel::kWarn)
#define OXMLC_ERROR OXMLC_LOG(::oxmlc::LogLevel::kError)
