#include "util/logging.hpp"

#include <atomic>
#include <iostream>
#include <mutex>

namespace oxmlc {
namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarn};
std::mutex g_io_mutex;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
    default: return "?????";
  }
}
}  // namespace

void set_log_level(LogLevel level) { g_level.store(level, std::memory_order_relaxed); }

LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }

namespace detail {
void log_line(LogLevel level, const std::string& message) {
  std::lock_guard<std::mutex> lock(g_io_mutex);
  std::cerr << "[oxmlc " << level_name(level) << "] " << message << '\n';
}
}  // namespace detail

}  // namespace oxmlc
