#include "util/parallel_for.hpp"

#include <algorithm>

namespace oxmlc::util {

std::size_t resolve_threads(std::size_t requested, std::size_t items) {
  std::size_t threads =
      requested != 0 ? requested
                     : std::max<std::size_t>(1, std::thread::hardware_concurrency());
  threads = std::min(threads, items != 0 ? items : std::size_t{1});
  return std::max<std::size_t>(1, threads);
}

std::size_t resolve_chunk(std::size_t requested, std::size_t items, std::size_t threads) {
  if (requested != 0) return requested;
  return std::max<std::size_t>(1, items / (threads * 8));
}

namespace {
struct NoContext {};
}  // namespace

void parallel_for(std::size_t n, const ParallelForOptions& options,
                  const std::function<void(std::size_t, std::size_t)>& body) {
  parallel_for<NoContext>(
      n, options, [] { return NoContext{}; },
      [&body](std::size_t begin, std::size_t end, NoContext&) { body(begin, end); });
}

}  // namespace oxmlc::util
