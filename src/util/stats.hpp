// Descriptive statistics used by the Monte-Carlo engine and the benchmark
// harness: moments, quantiles, box-plot summaries (the paper reports Figs. 11
// and 13 as box plots), histograms and empirical CDFs (Fig. 3).
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace oxmlc {

// Streaming accumulator for mean/variance (Welford) plus min/max.
class RunningStats {
 public:
  void add(double x);
  void merge(const RunningStats& other);

  std::size_t count() const { return n_; }
  double mean() const;
  // Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const;
  double max() const;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

// Linear-interpolation quantile (type 7, the R/NumPy default).
// `q` in [0,1] (out-of-range q throws InvalidArgumentError). Degenerate
// samples degrade gracefully: empty input returns NaN, a single sample is
// returned for every q.
double quantile(std::span<const double> sorted_values, double q);

// Convenience: copies, sorts and evaluates several quantiles at once.
std::vector<double> quantiles(std::span<const double> values, std::span<const double> qs);

// Five-number box-plot summary with Tukey whiskers (1.5 IQR) and outliers,
// matching what a Fig. 11/13-style box plot displays. An empty sample yields
// count = 0 with every statistic NaN; a single sample collapses the box onto
// that value (stddev 0, no outliers).
struct BoxPlotSummary {
  std::size_t count = 0;
  double minimum = 0.0;
  double q1 = 0.0;
  double median = 0.0;
  double q3 = 0.0;
  double maximum = 0.0;
  double whisker_low = 0.0;   // smallest sample >= q1 - 1.5*IQR
  double whisker_high = 0.0;  // largest sample <= q3 + 1.5*IQR
  double mean = 0.0;
  double stddev = 0.0;
  std::vector<double> outliers;  // samples outside the whiskers

  double iqr() const { return q3 - q1; }
};

BoxPlotSummary box_plot_summary(std::span<const double> values);

// Empirical CDF evaluated on the sample points: returns (sorted x, P(X<=x)).
// An empty sample returns an empty curve.
struct EmpiricalCdf {
  std::vector<double> x;
  std::vector<double> p;
};

EmpiricalCdf empirical_cdf(std::span<const double> values);

// Fixed-width histogram over [lo, hi] with `bins` buckets. Samples outside the
// range are clamped into the first/last bucket.
struct Histogram {
  double lo = 0.0;
  double hi = 0.0;
  std::vector<std::size_t> counts;

  double bin_width() const;
  double bin_center(std::size_t i) const;
};

Histogram histogram(std::span<const double> values, double lo, double hi, std::size_t bins);

// Least-squares fit of y = a + b*x. Returns {a, b, r2}.
struct LinearFit {
  double intercept = 0.0;
  double slope = 0.0;
  double r_squared = 0.0;
};

LinearFit linear_fit(std::span<const double> x, std::span<const double> y);

}  // namespace oxmlc
