#include "util/table.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <fstream>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "util/error.hpp"

namespace oxmlc {
namespace {

bool looks_numeric(const std::string& s) {
  if (s.empty()) return false;
  char* end = nullptr;
  std::strtod(s.c_str(), &end);
  // Treat as numeric if the prefix parses and the remainder is a short unit.
  return end != s.c_str();
}

std::string csv_escape(const std::string& s) {
  if (s.find_first_of(",\"\n") == std::string::npos) return s;
  std::string out = "\"";
  for (char c : s) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += "\"";
  return out;
}

}  // namespace

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  OXMLC_CHECK(!header_.empty(), "table header must be non-empty");
}

void Table::add_row(std::vector<std::string> cells) {
  OXMLC_CHECK(cells.size() == header_.size(), "table row arity mismatch");
  rows_.push_back(std::move(cells));
}

void Table::add_row_values(const std::vector<double>& values, int precision) {
  std::vector<std::string> cells;
  cells.reserve(values.size());
  for (double v : values) {
    std::ostringstream os;
    os << std::setprecision(precision) << v;
    cells.push_back(os.str());
  }
  add_row(std::move(cells));
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  auto rule = [&] {
    os << '+';
    for (std::size_t c = 0; c < width.size(); ++c) {
      for (std::size_t i = 0; i < width[c] + 2; ++i) os << '-';
      os << '+';
    }
    os << '\n';
  };
  auto emit = [&](const std::vector<std::string>& cells) {
    os << '|';
    for (std::size_t c = 0; c < cells.size(); ++c) {
      const bool right = looks_numeric(cells[c]);
      os << ' ' << (right ? std::right : std::left) << std::setw(static_cast<int>(width[c]))
         << cells[c] << ' ' << '|';
    }
    os << '\n';
  };
  rule();
  emit(header_);
  rule();
  for (const auto& row : rows_) emit(row);
  rule();
}

void Table::write_csv(std::ostream& os) const {
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c) os << ',';
      os << csv_escape(cells[c]);
    }
    os << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
}

void Table::write_csv_file(const std::string& path) const {
  std::ofstream file(path);
  OXMLC_CHECK(file.good(), "cannot open CSV output file: " + path);
  write_csv(file);
}

void Table::print_markdown(std::ostream& os) const {
  auto emit = [&](const std::vector<std::string>& cells) {
    os << '|';
    for (const auto& cell : cells) os << ' ' << cell << " |";
    os << '\n';
  };
  emit(header_);
  os << '|';
  for (std::size_t c = 0; c < header_.size(); ++c) os << "---|";
  os << '\n';
  for (const auto& row : rows_) emit(row);
}

std::string format_si(double value, const std::string& unit, int significant_digits) {
  struct Prefix {
    double scale;
    const char* name;
  };
  static constexpr Prefix kPrefixes[] = {
      {1e12, "T"}, {1e9, "G"}, {1e6, "M"}, {1e3, "k"}, {1.0, ""},
      {1e-3, "m"}, {1e-6, "u"}, {1e-9, "n"}, {1e-12, "p"}, {1e-15, "f"},
  };
  if (value == 0.0) return "0 " + unit;
  const double mag = std::fabs(value);
  const Prefix* chosen = &kPrefixes[sizeof(kPrefixes) / sizeof(kPrefixes[0]) - 1];
  for (const auto& p : kPrefixes) {
    if (mag >= p.scale) {
      chosen = &p;
      break;
    }
  }
  std::ostringstream os;
  os << std::setprecision(significant_digits) << value / chosen->scale << ' '
     << chosen->name << unit;
  return os.str();
}

std::string format_scaled(double value, double scale, int digits) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(digits) << value / scale;
  return os.str();
}

}  // namespace oxmlc
