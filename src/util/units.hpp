// SI unit literals and physical constants used throughout oxmlc.
//
// All internal quantities are plain `double` in base SI units (volts, amperes,
// ohms, seconds, farads, joules, metres). The user-defined literals below exist
// so that code reads like the paper: `10_uA`, `152_kOhm`, `3.5_us`, `1_pF`.
#pragma once

namespace oxmlc {

// ---------------------------------------------------------------------------
// Physical constants (CODATA 2018).
// ---------------------------------------------------------------------------
namespace phys {
inline constexpr double kBoltzmann = 1.380649e-23;    // J/K
inline constexpr double kElementaryCharge = 1.602176634e-19;  // C
inline constexpr double kRoomTemperature = 300.0;     // K
inline constexpr double kThermalVoltage300K = kBoltzmann * kRoomTemperature / kElementaryCharge;
inline constexpr double kVacuumPermittivity = 8.8541878128e-12;  // F/m
inline constexpr double kPi = 3.14159265358979323846;
}  // namespace phys

// ---------------------------------------------------------------------------
// Unit literals. Defined on `long double` / `unsigned long long` as the
// standard requires; all return double.
// ---------------------------------------------------------------------------
namespace literals {

// --- voltage ---
constexpr double operator"" _V(long double v) { return static_cast<double>(v); }
constexpr double operator"" _V(unsigned long long v) { return static_cast<double>(v); }
constexpr double operator"" _mV(long double v) { return static_cast<double>(v) * 1e-3; }
constexpr double operator"" _mV(unsigned long long v) { return static_cast<double>(v) * 1e-3; }

// --- current ---
constexpr double operator"" _A(long double v) { return static_cast<double>(v); }
constexpr double operator"" _A(unsigned long long v) { return static_cast<double>(v); }
constexpr double operator"" _mA(long double v) { return static_cast<double>(v) * 1e-3; }
constexpr double operator"" _mA(unsigned long long v) { return static_cast<double>(v) * 1e-3; }
constexpr double operator"" _uA(long double v) { return static_cast<double>(v) * 1e-6; }
constexpr double operator"" _uA(unsigned long long v) { return static_cast<double>(v) * 1e-6; }
constexpr double operator"" _nA(long double v) { return static_cast<double>(v) * 1e-9; }
constexpr double operator"" _nA(unsigned long long v) { return static_cast<double>(v) * 1e-9; }
constexpr double operator"" _pA(long double v) { return static_cast<double>(v) * 1e-12; }
constexpr double operator"" _pA(unsigned long long v) { return static_cast<double>(v) * 1e-12; }

// --- resistance ---
constexpr double operator"" _Ohm(long double v) { return static_cast<double>(v); }
constexpr double operator"" _Ohm(unsigned long long v) { return static_cast<double>(v); }
constexpr double operator"" _kOhm(long double v) { return static_cast<double>(v) * 1e3; }
constexpr double operator"" _kOhm(unsigned long long v) { return static_cast<double>(v) * 1e3; }
constexpr double operator"" _MOhm(long double v) { return static_cast<double>(v) * 1e6; }
constexpr double operator"" _MOhm(unsigned long long v) { return static_cast<double>(v) * 1e6; }

// --- time ---
constexpr double operator"" _s(long double v) { return static_cast<double>(v); }
constexpr double operator"" _s(unsigned long long v) { return static_cast<double>(v); }
constexpr double operator"" _ms(long double v) { return static_cast<double>(v) * 1e-3; }
constexpr double operator"" _ms(unsigned long long v) { return static_cast<double>(v) * 1e-3; }
constexpr double operator"" _us(long double v) { return static_cast<double>(v) * 1e-6; }
constexpr double operator"" _us(unsigned long long v) { return static_cast<double>(v) * 1e-6; }
constexpr double operator"" _ns(long double v) { return static_cast<double>(v) * 1e-9; }
constexpr double operator"" _ns(unsigned long long v) { return static_cast<double>(v) * 1e-9; }
constexpr double operator"" _ps(long double v) { return static_cast<double>(v) * 1e-12; }
constexpr double operator"" _ps(unsigned long long v) { return static_cast<double>(v) * 1e-12; }

// --- capacitance ---
constexpr double operator"" _F(long double v) { return static_cast<double>(v); }
constexpr double operator"" _uF(long double v) { return static_cast<double>(v) * 1e-6; }
constexpr double operator"" _nF(long double v) { return static_cast<double>(v) * 1e-9; }
constexpr double operator"" _nF(unsigned long long v) { return static_cast<double>(v) * 1e-9; }
constexpr double operator"" _pF(long double v) { return static_cast<double>(v) * 1e-12; }
constexpr double operator"" _pF(unsigned long long v) { return static_cast<double>(v) * 1e-12; }
constexpr double operator"" _fF(long double v) { return static_cast<double>(v) * 1e-15; }
constexpr double operator"" _fF(unsigned long long v) { return static_cast<double>(v) * 1e-15; }

// --- energy ---
constexpr double operator"" _J(long double v) { return static_cast<double>(v); }
constexpr double operator"" _pJ(long double v) { return static_cast<double>(v) * 1e-12; }
constexpr double operator"" _pJ(unsigned long long v) { return static_cast<double>(v) * 1e-12; }
constexpr double operator"" _fJ(long double v) { return static_cast<double>(v) * 1e-15; }
constexpr double operator"" _fJ(unsigned long long v) { return static_cast<double>(v) * 1e-15; }

// --- length ---
constexpr double operator"" _m(long double v) { return static_cast<double>(v); }
constexpr double operator"" _um(long double v) { return static_cast<double>(v) * 1e-6; }
constexpr double operator"" _um(unsigned long long v) { return static_cast<double>(v) * 1e-6; }
constexpr double operator"" _nm(long double v) { return static_cast<double>(v) * 1e-9; }
constexpr double operator"" _nm(unsigned long long v) { return static_cast<double>(v) * 1e-9; }

}  // namespace literals
}  // namespace oxmlc
