#include "devices/diode.hpp"

#include <cmath>

#include "util/error.hpp"
#include "util/units.hpp"

namespace oxmlc::dev {

Diode::Diode(std::string name, int anode, int cathode, const Params& params)
    : Device(std::move(name)), params_(params) {
  OXMLC_CHECK(params.saturation_current > 0.0, "diode " + name_ + ": Is must be positive");
  OXMLC_CHECK(params.emission_coefficient > 0.0, "diode " + name_ + ": n must be positive");
  nodes_ = {anode, cathode};
  vt_ = params_.emission_coefficient * phys::kBoltzmann * params_.temperature /
        phys::kElementaryCharge;
  // Linearize the exponential beyond ~0.9 V-equivalent to avoid overflow; the
  // extension is C1-continuous so Newton sees a smooth model.
  v_crit_ = vt_ * std::log(1.0 / params_.saturation_current);
}

void Diode::evaluate(double v, double& current, double& conductance) const {
  if (v <= v_crit_) {
    const double e = std::exp(v / vt_);
    current = params_.saturation_current * (e - 1.0);
    conductance = params_.saturation_current * e / vt_;
  } else {
    // First-order continuation of the exponential above v_crit_.
    const double e = std::exp(v_crit_ / vt_);
    const double i_crit = params_.saturation_current * (e - 1.0);
    const double g_crit = params_.saturation_current * e / vt_;
    current = i_crit + g_crit * (v - v_crit_);
    conductance = g_crit;
  }
}

void Diode::stamp(const spice::StampContext& ctx, spice::Stamper& stamper) {
  const int a = nodes_[0], c = nodes_[1];
  const double vd = v(ctx, a) - v(ctx, c);
  double i = 0.0, g = 0.0;
  evaluate(vd, i, g);
  g += ctx.gmin;  // parallel gmin as in SPICE
  i += ctx.gmin * vd;

  stamper.residual(a, i);
  stamper.residual(c, -i);
  stamper.jacobian(a, a, g);
  stamper.jacobian(a, c, -g);
  stamper.jacobian(c, a, -g);
  stamper.jacobian(c, c, g);
}

}  // namespace oxmlc::dev
