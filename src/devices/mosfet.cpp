#include "devices/mosfet.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace oxmlc::dev {

MosOperatingPoint evaluate_level1(const MosfetParams& params, double vgs, double vds,
                                  double vbs) {
  MosOperatingPoint op;

  // Body effect. vbs > 0 (forward bias) is clamped so the sqrt stays real;
  // the clamp region is outside normal operation for the circuits here.
  const double phi = params.phi;
  const double sqrt_arg = std::max(phi - vbs, 1e-3);
  op.vth = params.vt0 + params.gamma * (std::sqrt(sqrt_arg) - std::sqrt(phi));
  // dVth/dVbs = -gamma / (2 sqrt(phi - vbs))
  const double dvth_dvbs = -params.gamma / (2.0 * std::sqrt(sqrt_arg));

  const double vov = vgs - op.vth;  // overdrive
  const double beta = params.beta();

  if (vov <= 0.0) {
    op.region = MosOperatingPoint::Region::kCutoff;
    return op;
  }

  const double clm = 1.0 + params.lambda * vds;
  if (vds < vov) {
    // Triode.
    op.region = MosOperatingPoint::Region::kTriode;
    op.ids = beta * (vov * vds - 0.5 * vds * vds) * clm;
    op.gm = beta * vds * clm;
    op.gds = beta * (vov - vds) * clm + beta * (vov * vds - 0.5 * vds * vds) * params.lambda;
  } else {
    // Saturation.
    op.region = MosOperatingPoint::Region::kSaturation;
    op.ids = 0.5 * beta * vov * vov * clm;
    op.gm = beta * vov * clm;
    op.gds = 0.5 * beta * vov * vov * params.lambda;
  }
  // gmbs = dIds/dVbs = gm * (-dVth/dVbs) ... note dIds/dVth = -gm.
  op.gmbs = -op.gm * dvth_dvbs;
  return op;
}

Mosfet::Mosfet(std::string name, int drain, int gate, int source, int bulk,
               const MosfetParams& params)
    : Device(std::move(name)), params_(params), nominal_(params) {
  OXMLC_CHECK(params.w > 0.0 && params.l > 0.0, "mosfet " + name_ + ": W and L must be positive");
  OXMLC_CHECK(params.kp > 0.0, "mosfet " + name_ + ": kp must be positive");
  nodes_ = {drain, gate, source, bulk};
}

std::vector<spice::StructuralEdge> Mosfet::dc_edges() const {
  // Channel and bulk junctions conduct at DC; the gate is purely capacitive,
  // so a net driven only by MOSFET gates has no DC path to ground.
  const int nd = nodes_[0], ng = nodes_[1], ns = nodes_[2], nb = nodes_[3];
  return {{nd, ns, spice::EdgeKind::kConductance},
          {nd, nb, spice::EdgeKind::kConductance},
          {ns, nb, spice::EdgeKind::kConductance},
          {ng, ns, spice::EdgeKind::kCapacitive}};
}

MosOperatingPoint Mosfet::evaluate_terminal(double vd, double vg, double vs, double vb,
                                            bool& swapped) const {
  // PMOS is evaluated as an NMOS with all voltages negated.
  const double sign = params_.type == MosType::kPmos ? -1.0 : 1.0;
  double d = sign * vd, g = sign * vg, s = sign * vs, b = sign * vb;
  swapped = d < s;
  if (swapped) std::swap(d, s);
  return evaluate_level1(params_, g - s, d - s, b - s);
}

void Mosfet::stamp(const spice::StampContext& ctx, spice::Stamper& stamper) {
  const int nd = nodes_[0], ng = nodes_[1], ns = nodes_[2], nb = nodes_[3];
  const double vd = v(ctx, nd), vg = v(ctx, ng), vs = v(ctx, ns), vb = v(ctx, nb);

  bool swapped = false;
  const MosOperatingPoint op = evaluate_terminal(vd, vg, vs, vb, swapped);

  const double sign = params_.type == MosType::kPmos ? -1.0 : 1.0;
  // Effective terminal roles after source/drain swap (in the sign-normalized
  // view). `eff_d`/`eff_s` are the *circuit* nodes playing drain/source.
  const int eff_d = swapped ? ns : nd;
  const int eff_s = swapped ? nd : ns;

  // Current flows eff_d -> eff_s inside the normalized device; map back to
  // circuit current with `sign`.
  const double i = sign * op.ids;

  stamper.residual(eff_d, i);
  stamper.residual(eff_s, -i);

  // In the normalized frame: dIds/dVgs=gm, dIds/dVds=gds, dIds/dVbs=gmbs where
  // voltages are (g-s), (d-s), (b-s) of *effective* terminals (after sign).
  // Chain rule through the sign flip: d(vx_norm)/d(vx_circuit) = sign, and the
  // stamped current also carries `sign`, so sign^2 = 1 and the conductances
  // stamp identically for NMOS and PMOS.
  const double gm = op.gm, gds = op.gds, gmbs = op.gmbs;
  stamper.jacobian(eff_d, ng, gm);
  stamper.jacobian(eff_d, eff_d, gds);
  stamper.jacobian(eff_d, nb, gmbs);
  stamper.jacobian(eff_d, eff_s, -(gm + gds + gmbs));
  stamper.jacobian(eff_s, ng, -gm);
  stamper.jacobian(eff_s, eff_d, -gds);
  stamper.jacobian(eff_s, nb, -gmbs);
  stamper.jacobian(eff_s, eff_s, gm + gds + gmbs);
}

double Mosfet::drain_current(std::span<const double> x) const {
  auto volt = [&](int n) { return n < 0 ? 0.0 : x[static_cast<std::size_t>(n)]; };
  bool swapped = false;
  const MosOperatingPoint op = evaluate_terminal(volt(nodes_[0]), volt(nodes_[1]),
                                                 volt(nodes_[2]), volt(nodes_[3]), swapped);
  const double sign = params_.type == MosType::kPmos ? -1.0 : 1.0;
  return (swapped ? -1.0 : 1.0) * sign * op.ids;
}

void Mosfet::apply_mismatch(double delta_vth, double delta_beta_rel) {
  params_ = nominal_;
  params_.vt0 += delta_vth;
  params_.kp *= std::max(0.1, 1.0 + delta_beta_rel);
}

namespace tech130hv {

namespace {
// Channel-length modulation scales inversely with L (Early voltage ~ L):
// minimum-length devices see the full effect, the long-channel mirror
// devices of the termination circuit are nearly ideal current sources.
double lambda_for_length(double base_at_min_length, double l) {
  return base_at_min_length * (0.5e-6 / l);
}
}  // namespace

MosfetParams nmos(double w, double l) {
  MosfetParams p;
  p.type = MosType::kNmos;
  p.w = w;
  p.l = l;
  p.kp = 170e-6;
  p.vt0 = 0.58;
  p.lambda = lambda_for_length(0.06, l);
  p.gamma = 0.45;
  p.phi = 0.80;
  return p;
}

MosfetParams pmos(double w, double l) {
  MosfetParams p;
  p.type = MosType::kPmos;
  p.w = w;
  p.l = l;
  p.kp = 60e-6;
  p.vt0 = 0.60;
  p.lambda = lambda_for_length(0.08, l);
  p.gamma = 0.40;
  p.phi = 0.80;
  return p;
}

}  // namespace tech130hv

}  // namespace oxmlc::dev
