#include "devices/sources.hpp"

#include <algorithm>
#include <cmath>

#include "spice/analyze/diagnostic.hpp"
#include "util/error.hpp"
#include "util/units.hpp"

namespace oxmlc::dev {

// --- static-analysis structure descriptions -------------------------------
// Output pairs carry the electrical role of the device; control pairs are
// infinite-impedance observers and contribute no DC edge.

std::vector<spice::StructuralEdge> VoltageSource::dc_edges() const {
  return {{nodes_[0], nodes_[1], spice::EdgeKind::kVoltageSource}};
}

std::vector<spice::StructuralEdge> CurrentSource::dc_edges() const {
  return {{nodes_[0], nodes_[1], spice::EdgeKind::kCurrentSource}};
}

std::vector<spice::StructuralEdge> Vcvs::dc_edges() const {
  return {{nodes_[0], nodes_[1], spice::EdgeKind::kVoltageSource}};
}

std::vector<spice::StructuralEdge> Vccs::dc_edges() const {
  return {{nodes_[0], nodes_[1], spice::EdgeKind::kCurrentSource}};
}

std::vector<spice::StructuralEdge> Cccs::dc_edges() const {
  return {{nodes_[0], nodes_[1], spice::EdgeKind::kCurrentSource}};
}

std::vector<spice::StructuralEdge> Ccvs::dc_edges() const {
  return {{nodes_[0], nodes_[1], spice::EdgeKind::kVoltageSource}};
}

std::vector<spice::StructuralEdge> VSwitch::dc_edges() const {
  // The a-b pair conducts (r_on..r_off); the control pair only observes.
  return {{nodes_[0], nodes_[1], spice::EdgeKind::kConductance}};
}

std::vector<spice::StructuralEdge> BehavioralComparator::dc_edges() const {
  // The output voltage is forced relative to ground; inputs only observe.
  return {{nodes_[0], spice::kGround, spice::EdgeKind::kVoltageSource}};
}

VoltageSource::VoltageSource(std::string name, int positive, int negative,
                             std::shared_ptr<Waveform> waveform)
    : Device(std::move(name)), waveform_(std::move(waveform)) {
  OXMLC_CHECK(waveform_ != nullptr, "voltage source " + name_ + ": null waveform");
  nodes_ = {positive, negative};
}

VoltageSource::VoltageSource(std::string name, int positive, int negative, double dc_value)
    : VoltageSource(std::move(name), positive, negative,
                    std::make_shared<spice::DcWaveform>(dc_value)) {}

void VoltageSource::stamp(const StampContext& ctx, Stamper& stamper) {
  const int p = nodes_[0], m = nodes_[1], br = branches_[0];
  const double i_br = ctx.x[static_cast<std::size_t>(br)];
  stamper.residual(p, i_br);
  stamper.residual(m, -i_br);
  stamper.jacobian(p, br, 1.0);
  stamper.jacobian(m, br, -1.0);

  const double target = waveform_->value(ctx.time) * ctx.source_scale;
  stamper.residual(br, v(ctx, p) - v(ctx, m) - target);
  stamper.jacobian(br, p, 1.0);
  stamper.jacobian(br, m, -1.0);
}

std::vector<double> VoltageSource::breakpoints(double horizon) const {
  return waveform_->breakpoints(horizon);
}

double VoltageSource::current(std::span<const double> x) const {
  return x[static_cast<std::size_t>(branches_[0])];
}

void VoltageSource::set_waveform(std::shared_ptr<Waveform> waveform) {
  OXMLC_CHECK(waveform != nullptr, "voltage source " + name_ + ": null waveform");
  waveform_ = std::move(waveform);
}

void VoltageSource::set_ac(double magnitude, double phase_deg) {
  const double phase = phase_deg * phys::kPi / 180.0;
  ac_ = std::polar(magnitude, phase);
}

void VoltageSource::stamp_ac_source(std::span<std::complex<double>> rhs) const {
  if (ac_ == std::complex<double>{} || branches_.empty()) return;
  // Branch equation Vp - Vm - Vsrc = 0: the phasor lands on the RHS.
  rhs[static_cast<std::size_t>(branches_[0])] += ac_;
}

CurrentSource::CurrentSource(std::string name, int positive, int negative,
                             std::shared_ptr<Waveform> waveform)
    : Device(std::move(name)), waveform_(std::move(waveform)) {
  OXMLC_CHECK(waveform_ != nullptr, "current source " + name_ + ": null waveform");
  nodes_ = {positive, negative};
}

CurrentSource::CurrentSource(std::string name, int positive, int negative, double dc_value)
    : CurrentSource(std::move(name), positive, negative,
                    std::make_shared<spice::DcWaveform>(dc_value)) {}

void CurrentSource::stamp(const StampContext& ctx, Stamper& stamper) {
  const double i = waveform_->value(ctx.time) * ctx.source_scale;
  // Current flows from n+ through the source to n-: leaves n+, enters n-.
  stamper.residual(nodes_[0], i);
  stamper.residual(nodes_[1], -i);
}

std::vector<double> CurrentSource::breakpoints(double horizon) const {
  return waveform_->breakpoints(horizon);
}

void CurrentSource::set_waveform(std::shared_ptr<Waveform> waveform) {
  OXMLC_CHECK(waveform != nullptr, "current source " + name_ + ": null waveform");
  waveform_ = std::move(waveform);
}

void CurrentSource::set_ac(double magnitude, double phase_deg) {
  const double phase = phase_deg * phys::kPi / 180.0;
  ac_ = std::polar(magnitude, phase);
}

void CurrentSource::stamp_ac_source(std::span<std::complex<double>> rhs) const {
  if (ac_ == std::complex<double>{}) return;
  // Residual form carries +i at n+ (leaving): the excitation moves to the RHS
  // with opposite sign at n+, same at n-.
  if (nodes_[0] >= 0) rhs[static_cast<std::size_t>(nodes_[0])] -= ac_;
  if (nodes_[1] >= 0) rhs[static_cast<std::size_t>(nodes_[1])] += ac_;
}

Vcvs::Vcvs(std::string name, int out_pos, int out_neg, int ctrl_pos, int ctrl_neg, double gain)
    : Device(std::move(name)), gain_(gain) {
  nodes_ = {out_pos, out_neg, ctrl_pos, ctrl_neg};
}

void Vcvs::stamp(const StampContext& ctx, Stamper& stamper) {
  const int p = nodes_[0], m = nodes_[1], cp = nodes_[2], cm = nodes_[3], br = branches_[0];
  const double i_br = ctx.x[static_cast<std::size_t>(br)];
  stamper.residual(p, i_br);
  stamper.residual(m, -i_br);
  stamper.jacobian(p, br, 1.0);
  stamper.jacobian(m, br, -1.0);

  stamper.residual(br, v(ctx, p) - v(ctx, m) - gain_ * (v(ctx, cp) - v(ctx, cm)));
  stamper.jacobian(br, p, 1.0);
  stamper.jacobian(br, m, -1.0);
  stamper.jacobian(br, cp, -gain_);
  stamper.jacobian(br, cm, gain_);
}

Vccs::Vccs(std::string name, int out_pos, int out_neg, int ctrl_pos, int ctrl_neg,
           double transconductance)
    : Device(std::move(name)), gm_(transconductance) {
  nodes_ = {out_pos, out_neg, ctrl_pos, ctrl_neg};
}

void Vccs::stamp(const StampContext& ctx, Stamper& stamper) {
  const int p = nodes_[0], m = nodes_[1], cp = nodes_[2], cm = nodes_[3];
  const double i = gm_ * (v(ctx, cp) - v(ctx, cm));
  stamper.residual(p, i);
  stamper.residual(m, -i);
  stamper.jacobian(p, cp, gm_);
  stamper.jacobian(p, cm, -gm_);
  stamper.jacobian(m, cp, -gm_);
  stamper.jacobian(m, cm, gm_);
}

Cccs::Cccs(std::string name, int out_pos, int out_neg, const VoltageSource& sensor,
           double gain)
    : Device(std::move(name)), sensor_(sensor), gain_(gain) {
  nodes_ = {out_pos, out_neg};
}

void Cccs::stamp(const StampContext& ctx, Stamper& stamper) {
  const int sensor_branch = sensor_.branch_index();
  OXMLC_CHECK(sensor_branch >= 0, "CCCS " + name_ + ": sensor source not finalized");
  const double i_sense = ctx.x[static_cast<std::size_t>(sensor_branch)];
  const double i = gain_ * i_sense;
  stamper.residual(nodes_[0], i);
  stamper.residual(nodes_[1], -i);
  stamper.jacobian(nodes_[0], sensor_branch, gain_);
  stamper.jacobian(nodes_[1], sensor_branch, -gain_);
}

Ccvs::Ccvs(std::string name, int out_pos, int out_neg, const VoltageSource& sensor,
           double transresistance)
    : Device(std::move(name)), sensor_(sensor), r_(transresistance) {
  nodes_ = {out_pos, out_neg};
}

void Ccvs::stamp(const StampContext& ctx, Stamper& stamper) {
  const int sensor_branch = sensor_.branch_index();
  OXMLC_CHECK(sensor_branch >= 0, "CCVS " + name_ + ": sensor source not finalized");
  const int p = nodes_[0], m = nodes_[1], br = branches_[0];
  const double i_br = ctx.x[static_cast<std::size_t>(br)];
  stamper.residual(p, i_br);
  stamper.residual(m, -i_br);
  stamper.jacobian(p, br, 1.0);
  stamper.jacobian(m, br, -1.0);

  const double i_sense = ctx.x[static_cast<std::size_t>(sensor_branch)];
  stamper.residual(br, v(ctx, p) - v(ctx, m) - r_ * i_sense);
  stamper.jacobian(br, p, 1.0);
  stamper.jacobian(br, m, -1.0);
  stamper.jacobian(br, sensor_branch, -r_);
}

VSwitch::VSwitch(std::string name, int a, int b, int ctrl_pos, int ctrl_neg,
                 const Params& params)
    : Device(std::move(name)), params_(params) {
  OXMLC_CHECK(params.r_on > 0.0 && params.r_off > params.r_on,
              "switch " + name_ + ": need 0 < r_on < r_off");
  OXMLC_CHECK(params.transition > 0.0, "switch " + name_ + ": transition must be positive");
  nodes_ = {a, b, ctrl_pos, ctrl_neg};
}

double VSwitch::conductance(double v_ctrl) const {
  const double g_on = 1.0 / params_.r_on;
  const double g_off = 1.0 / params_.r_off;
  const double sign = params_.active_low ? -1.0 : 1.0;
  const double s =
      0.5 * (1.0 + std::tanh(sign * (v_ctrl - params_.threshold) / params_.transition));
  // Log-space interpolation keeps conductance positive over many decades.
  return g_off * std::pow(g_on / g_off, s);
}

void VSwitch::stamp(const StampContext& ctx, Stamper& stamper) {
  const int a = nodes_[0], b = nodes_[1], cp = nodes_[2], cm = nodes_[3];
  const double vab = v(ctx, a) - v(ctx, b);
  const double vc = v(ctx, cp) - v(ctx, cm);
  const double g = conductance(vc);

  // dg/dvc via chain rule on the log-space interpolation.
  const double g_on = 1.0 / params_.r_on;
  const double g_off = 1.0 / params_.r_off;
  const double sign = params_.active_low ? -1.0 : 1.0;
  const double u = sign * (vc - params_.threshold) / params_.transition;
  const double ds_dvc =
      sign * 0.5 / (params_.transition * std::cosh(u) * std::cosh(u));
  const double dg_dvc = g * std::log(g_on / g_off) * ds_dvc;

  const double i = g * vab;
  stamper.residual(a, i);
  stamper.residual(b, -i);
  stamper.jacobian(a, a, g);
  stamper.jacobian(a, b, -g);
  stamper.jacobian(b, a, -g);
  stamper.jacobian(b, b, g);
  stamper.jacobian(a, cp, dg_dvc * vab);
  stamper.jacobian(a, cm, -dg_dvc * vab);
  stamper.jacobian(b, cp, -dg_dvc * vab);
  stamper.jacobian(b, cm, dg_dvc * vab);
}

BehavioralComparator::BehavioralComparator(std::string name, int out, int in_pos, int in_neg,
                                           double v_low, double v_high, double gain)
    : Device(std::move(name)), v_low_(v_low), v_high_(v_high), gain_(gain) {
  OXMLC_CHECK(gain > 0.0, "comparator " + name_ + ": gain must be positive");
  nodes_ = {out, in_pos, in_neg};
}

void BehavioralComparator::stamp(const StampContext& ctx, Stamper& stamper) {
  const int out = nodes_[0], p = nodes_[1], m = nodes_[2], br = branches_[0];
  const double i_br = ctx.x[static_cast<std::size_t>(br)];
  stamper.residual(out, i_br);
  stamper.jacobian(out, br, 1.0);

  const double dv = v(ctx, p) - v(ctx, m);
  // Logistic with slope `gain_` at the origin, saturating to the rails.
  const double swing = v_high_ - v_low_;
  const double z = 4.0 * gain_ * dv / swing;  // normalized input
  const double zc = std::clamp(z, -60.0, 60.0);
  const double s = 1.0 / (1.0 + std::exp(-zc));
  const double target = v_low_ + swing * s;
  const double ds_ddv = s * (1.0 - s) * 4.0 * gain_ / swing;

  stamper.residual(br, v(ctx, out) - target);
  stamper.jacobian(br, out, 1.0);
  stamper.jacobian(br, p, -swing * ds_ddv);
  stamper.jacobian(br, m, swing * ds_ddv);
}

}  // namespace oxmlc::dev
