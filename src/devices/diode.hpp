// Shockley diode with junction-voltage limiting for Newton robustness.
#pragma once

#include "spice/device.hpp"

namespace oxmlc::dev {

struct DiodeParams {
  double saturation_current = 1e-14;  // Is (A)
  double emission_coefficient = 1.0;  // n
  double temperature = 300.0;         // K
};

class Diode final : public spice::Device {
 public:
  using Params = DiodeParams;

  Diode(std::string name, int anode, int cathode, const Params& params = Params{});

  void stamp(const spice::StampContext& ctx, spice::Stamper& stamper) override;

  // I(V) and dI/dV of the limited model (exposed for unit tests).
  void evaluate(double v, double& current, double& conductance) const;

 private:
  Params params_;
  double vt_;        // n * kT/q
  double v_crit_;    // above this the exponential is linearized
};

}  // namespace oxmlc::dev
