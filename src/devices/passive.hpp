// Linear passive devices: resistor, capacitor, inductor.
#pragma once

#include "spice/device.hpp"

namespace oxmlc::dev {

using spice::Device;
using spice::StampContext;
using spice::Stamper;

class Resistor final : public Device {
 public:
  Resistor(std::string name, int a, int b, double resistance);

  void stamp(const StampContext& ctx, Stamper& stamper) override;
  void self_check(std::vector<spice::analyze::Diagnostic>& out) const override;

  // Current flowing a -> b at iterate x.
  double current(std::span<const double> x) const;

  double resistance() const { return resistance_; }
  void set_resistance(double r);

 private:
  double resistance_;
};

// Capacitor with Backward-Euler / trapezoidal companion models. Open in DC.
class Capacitor final : public Device {
 public:
  Capacitor(std::string name, int a, int b, double capacitance,
            double initial_voltage = 0.0, bool use_initial_voltage = false);

  void stamp(const StampContext& ctx, Stamper& stamper) override;
  void init_state(const StampContext& ctx) override;
  void commit_step(const StampContext& ctx) override;
  void stamp_reactive(const StampContext& ctx, num::TripletMatrix& b) const override;
  std::vector<spice::StructuralEdge> dc_edges() const override;
  void self_check(std::vector<spice::analyze::Diagnostic>& out) const override;

  double capacitance() const { return capacitance_; }
  double branch_current() const { return i_prev_; }

 private:
  double companion_current(const StampContext& ctx, double v_now, double& geq) const;

  double capacitance_;
  double initial_voltage_;
  bool use_initial_voltage_;
  double v_prev_ = 0.0;
  double i_prev_ = 0.0;
};

// Inductor: short in DC; adds one branch-current unknown.
class Inductor final : public Device {
 public:
  Inductor(std::string name, int a, int b, double inductance);

  std::size_t branch_count() const override { return 1; }
  void stamp(const StampContext& ctx, Stamper& stamper) override;
  void init_state(const StampContext& ctx) override;
  void commit_step(const StampContext& ctx) override;
  void stamp_reactive(const StampContext& ctx, num::TripletMatrix& b) const override;
  std::vector<spice::StructuralEdge> dc_edges() const override;
  void self_check(std::vector<spice::analyze::Diagnostic>& out) const override;

  double inductance() const { return inductance_; }

 private:
  double inductance_;
  double i_prev_ = 0.0;
  double v_prev_ = 0.0;
};

}  // namespace oxmlc::dev
