#include "devices/passive.hpp"

#include <cstdio>

#include "spice/analyze/diagnostic.hpp"
#include "util/error.hpp"

namespace oxmlc::dev {
namespace {

using spice::analyze::Diagnostic;
using spice::analyze::Severity;

// %g formatting: "1e-15" instead of std::to_string's "0.000000".
std::string compact(double v) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%g", v);
  return buffer;
}

// Value-plausibility lint shared by the passives: constructors already reject
// non-positive values, so the static check targets the unit-typo band — a
// "1f" (femto) resistor or a "1g" (giga) capacitor parses fine but is almost
// certainly a suffix mistake.
void check_plausible(double value, double low, double high, const char* quantity,
                     const char* unit, std::vector<Diagnostic>& out) {
  if (value >= low && value <= high) return;
  Diagnostic d;
  d.severity = Severity::kWarning;
  d.code = spice::analyze::codes::kNonPositivePassive;
  d.message = std::string(quantity) + " of " + compact(value) + " " + unit +
              " is outside the plausible range [" + compact(low) + ", " +
              compact(high) + "] " + unit;
  d.fix_hint = "check the value's SI suffix (m = milli, meg = 1e6, f = femto)";
  out.push_back(std::move(d));
}

}  // namespace

Resistor::Resistor(std::string name, int a, int b, double resistance)
    : Device(std::move(name)), resistance_(resistance) {
  OXMLC_CHECK(resistance > 0.0, "resistor " + name_ + ": resistance must be positive");
  nodes_ = {a, b};
}

void Resistor::stamp(const StampContext& ctx, Stamper& stamper) {
  const double g = 1.0 / resistance_;
  stamper.conductance(nodes_[0], nodes_[1], g, v(ctx, nodes_[0]), v(ctx, nodes_[1]));
}

double Resistor::current(std::span<const double> x) const {
  const double va = nodes_[0] < 0 ? 0.0 : x[static_cast<std::size_t>(nodes_[0])];
  const double vb = nodes_[1] < 0 ? 0.0 : x[static_cast<std::size_t>(nodes_[1])];
  return (va - vb) / resistance_;
}

void Resistor::set_resistance(double r) {
  OXMLC_CHECK(r > 0.0, "resistor " + name_ + ": resistance must be positive");
  resistance_ = r;
}

void Resistor::self_check(std::vector<Diagnostic>& out) const {
  check_plausible(resistance_, 1e-3, 1e12, "resistance", "Ohm", out);
}

Capacitor::Capacitor(std::string name, int a, int b, double capacitance,
                     double initial_voltage, bool use_initial_voltage)
    : Device(std::move(name)), capacitance_(capacitance),
      initial_voltage_(initial_voltage), use_initial_voltage_(use_initial_voltage) {
  OXMLC_CHECK(capacitance > 0.0, "capacitor " + name_ + ": capacitance must be positive");
  nodes_ = {a, b};
}

double Capacitor::companion_current(const StampContext& ctx, double v_now,
                                    double& geq) const {
  if (ctx.method == spice::IntegrationMethod::kTrapezoidal) {
    geq = 2.0 * capacitance_ / ctx.dt;
    return geq * (v_now - v_prev_) - i_prev_;
  }
  geq = capacitance_ / ctx.dt;
  return geq * (v_now - v_prev_);
}

void Capacitor::stamp(const StampContext& ctx, Stamper& stamper) {
  if (ctx.mode == spice::AnalysisMode::kDcOperatingPoint || ctx.dt <= 0.0) {
    // Open circuit in DC; nothing to stamp (global gmin keeps nodes anchored).
    return;
  }
  const double v_now = v(ctx, nodes_[0]) - v(ctx, nodes_[1]);
  double geq = 0.0;
  const double i = companion_current(ctx, v_now, geq);
  stamper.residual(nodes_[0], i);
  stamper.residual(nodes_[1], -i);
  stamper.jacobian(nodes_[0], nodes_[0], geq);
  stamper.jacobian(nodes_[0], nodes_[1], -geq);
  stamper.jacobian(nodes_[1], nodes_[0], -geq);
  stamper.jacobian(nodes_[1], nodes_[1], geq);
}

void Capacitor::stamp_reactive(const StampContext&, num::TripletMatrix& b) const {
  const int p = nodes_[0], m = nodes_[1];
  auto add = [&](int r, int c, double v) {
    if (r >= 0 && c >= 0) b.add(static_cast<std::size_t>(r), static_cast<std::size_t>(c), v);
  };
  add(p, p, capacitance_);
  add(p, m, -capacitance_);
  add(m, p, -capacitance_);
  add(m, m, capacitance_);
}

void Capacitor::init_state(const StampContext& ctx) {
  v_prev_ = use_initial_voltage_ ? initial_voltage_
                                 : v(ctx, nodes_[0]) - v(ctx, nodes_[1]);
  i_prev_ = 0.0;
}

void Capacitor::commit_step(const StampContext& ctx) {
  const double v_now = v(ctx, nodes_[0]) - v(ctx, nodes_[1]);
  double geq = 0.0;
  i_prev_ = companion_current(ctx, v_now, geq);
  v_prev_ = v_now;
}

std::vector<spice::StructuralEdge> Capacitor::dc_edges() const {
  return {{nodes_[0], nodes_[1], spice::EdgeKind::kCapacitive}};
}

void Capacitor::self_check(std::vector<Diagnostic>& out) const {
  check_plausible(capacitance_, 1e-18, 1.0, "capacitance", "F", out);
}

Inductor::Inductor(std::string name, int a, int b, double inductance)
    : Device(std::move(name)), inductance_(inductance) {
  OXMLC_CHECK(inductance > 0.0, "inductor " + name_ + ": inductance must be positive");
  nodes_ = {a, b};
}

void Inductor::stamp(const StampContext& ctx, Stamper& stamper) {
  const int a = nodes_[0], b = nodes_[1], br = branches_[0];
  const double i_br = ctx.x[static_cast<std::size_t>(br)];
  // KCL: branch current leaves a, enters b.
  stamper.residual(a, i_br);
  stamper.residual(b, -i_br);
  stamper.jacobian(a, br, 1.0);
  stamper.jacobian(b, br, -1.0);

  const double va = v(ctx, a), vb = v(ctx, b);
  if (ctx.mode == spice::AnalysisMode::kDcOperatingPoint || ctx.dt <= 0.0) {
    // DC: short circuit, V = 0.
    stamper.residual(br, va - vb);
    stamper.jacobian(br, a, 1.0);
    stamper.jacobian(br, b, -1.0);
    return;
  }
  // BE: v = L (i - i_prev)/dt ; Trap: v = 2L/dt (i - i_prev) - v_prev.
  const bool trap = ctx.method == spice::IntegrationMethod::kTrapezoidal;
  const double req = (trap ? 2.0 : 1.0) * inductance_ / ctx.dt;
  const double veq = trap ? (-req * i_prev_ - v_prev_) : (-req * i_prev_);
  stamper.residual(br, va - vb - req * i_br - veq);
  stamper.jacobian(br, a, 1.0);
  stamper.jacobian(br, b, -1.0);
  stamper.jacobian(br, br, -req);
}

void Inductor::stamp_reactive(const StampContext&, num::TripletMatrix& b) const {
  // Branch equation in AC: Vp - Vm - j*w*L*i = 0 -> -L on the branch diagonal.
  if (branches_.empty()) return;
  const int br = branches_[0];
  if (br >= 0) b.add(static_cast<std::size_t>(br), static_cast<std::size_t>(br), -inductance_);
}

void Inductor::init_state(const StampContext& ctx) {
  i_prev_ = ctx.x[static_cast<std::size_t>(branches_[0])];
  v_prev_ = 0.0;
}

void Inductor::commit_step(const StampContext& ctx) {
  i_prev_ = ctx.x[static_cast<std::size_t>(branches_[0])];
  v_prev_ = v(ctx, nodes_[0]) - v(ctx, nodes_[1]);
}

std::vector<spice::StructuralEdge> Inductor::dc_edges() const {
  // DC short: participates in voltage-source loop topology.
  return {{nodes_[0], nodes_[1], spice::EdgeKind::kVoltageSource}};
}

void Inductor::self_check(std::vector<Diagnostic>& out) const {
  check_plausible(inductance_, 1e-15, 1e3, "inductance", "H", out);
}

}  // namespace oxmlc::dev
