// Independent and controlled sources.
#pragma once

#include <memory>

#include "spice/device.hpp"
#include "spice/waveform.hpp"

namespace oxmlc::dev {

using spice::Device;
using spice::StampContext;
using spice::Stamper;
using spice::Waveform;

// Independent voltage source V(n+, n-) = waveform(t). Adds one branch unknown
// (its current, flowing n+ -> n- through the source).
class VoltageSource final : public Device {
 public:
  VoltageSource(std::string name, int positive, int negative,
                std::shared_ptr<Waveform> waveform);
  // DC convenience.
  VoltageSource(std::string name, int positive, int negative, double dc_value);

  std::size_t branch_count() const override { return 1; }
  void stamp(const StampContext& ctx, Stamper& stamper) override;
  std::vector<double> breakpoints(double horizon) const override;
  std::vector<spice::StructuralEdge> dc_edges() const override;

  // Source current at iterate x (positive = out of the + terminal through the
  // external circuit).
  double current(std::span<const double> x) const;

  Waveform& waveform() { return *waveform_; }
  void set_waveform(std::shared_ptr<Waveform> waveform);
  // Unknown index of the source's branch current (-1 before finalize).
  int branch_index() const { return branches_.empty() ? -1 : branches_[0]; }

  // AC (small-signal) excitation phasor; zero magnitude = quiet in .ac.
  void set_ac(double magnitude, double phase_deg = 0.0);
  void stamp_ac_source(std::span<std::complex<double>> rhs) const override;

 private:
  std::shared_ptr<Waveform> waveform_;
  std::complex<double> ac_{0.0, 0.0};
};

// Independent current source; current flows n+ -> n- through the source.
class CurrentSource final : public Device {
 public:
  CurrentSource(std::string name, int positive, int negative,
                std::shared_ptr<Waveform> waveform);
  CurrentSource(std::string name, int positive, int negative, double dc_value);

  void stamp(const StampContext& ctx, Stamper& stamper) override;
  std::vector<double> breakpoints(double horizon) const override;
  std::vector<spice::StructuralEdge> dc_edges() const override;

  Waveform& waveform() { return *waveform_; }
  void set_waveform(std::shared_ptr<Waveform> waveform);

  // AC (small-signal) excitation phasor; zero magnitude = quiet in .ac.
  void set_ac(double magnitude, double phase_deg = 0.0);
  void stamp_ac_source(std::span<std::complex<double>> rhs) const override;

 private:
  std::shared_ptr<Waveform> waveform_;
  std::complex<double> ac_{0.0, 0.0};
};

// Voltage-controlled voltage source: V(out+, out-) = gain * V(c+, c-).
class Vcvs final : public Device {
 public:
  Vcvs(std::string name, int out_pos, int out_neg, int ctrl_pos, int ctrl_neg, double gain);

  std::size_t branch_count() const override { return 1; }
  void stamp(const StampContext& ctx, Stamper& stamper) override;
  std::vector<spice::StructuralEdge> dc_edges() const override;

 private:
  double gain_;
};

// Voltage-controlled current source: I(out+ -> out-) = gm * V(c+, c-).
class Vccs final : public Device {
 public:
  Vccs(std::string name, int out_pos, int out_neg, int ctrl_pos, int ctrl_neg,
       double transconductance);

  void stamp(const StampContext& ctx, Stamper& stamper) override;
  std::vector<spice::StructuralEdge> dc_edges() const override;

 private:
  double gm_;
};

// Current-controlled current source: I(out+ -> out-) = gain * I(sensor),
// where the sensing branch is an existing VoltageSource (SPICE F-element
// convention: the controlling current is the one flowing through a named
// V source from its + to its - terminal).
class Cccs final : public Device {
 public:
  Cccs(std::string name, int out_pos, int out_neg, const VoltageSource& sensor,
       double gain);

  void stamp(const StampContext& ctx, Stamper& stamper) override;
  std::vector<spice::StructuralEdge> dc_edges() const override;

 private:
  const VoltageSource& sensor_;
  double gain_;
};

// Current-controlled voltage source: V(out+, out-) = r * I(sensor)
// (SPICE H element).
class Ccvs final : public Device {
 public:
  Ccvs(std::string name, int out_pos, int out_neg, const VoltageSource& sensor,
       double transresistance);

  std::size_t branch_count() const override { return 1; }
  void stamp(const StampContext& ctx, Stamper& stamper) override;
  std::vector<spice::StructuralEdge> dc_edges() const override;

 private:
  const VoltageSource& sensor_;
  double r_;
};

// Voltage-controlled switch with smooth (tanh) resistance transition between
// r_off and r_on around the threshold. The smoothness keeps Newton happy and
// mimics the finite gain of a real pass-gate.
class VSwitch final : public Device {
 public:
  struct Params {
    double threshold = 0.5;       // control voltage at half transition
    double transition = 0.05;     // tanh width (V)
    double r_on = 1.0;
    double r_off = 1e9;
    bool active_low = false;      // true: conducts when control is LOW
  };

  VSwitch(std::string name, int a, int b, int ctrl_pos, int ctrl_neg, const Params& params);

  void stamp(const StampContext& ctx, Stamper& stamper) override;
  std::vector<spice::StructuralEdge> dc_edges() const override;

  // Conductance at a given control voltage (exposed for tests).
  double conductance(double v_ctrl) const;

 private:
  Params params_;
};

// Behavioral rail-to-rail comparator: Vout = vlow + (vhigh-vlow) * s(Vp - Vn),
// s = logistic with gain `gain` (V/V). Used for the behavioral variant of the
// write-termination comparator and in testbenches.
class BehavioralComparator final : public Device {
 public:
  BehavioralComparator(std::string name, int out, int in_pos, int in_neg, double v_low,
                       double v_high, double gain = 1e4);

  std::size_t branch_count() const override { return 1; }
  void stamp(const StampContext& ctx, Stamper& stamper) override;
  std::vector<spice::StructuralEdge> dc_edges() const override;

 private:
  double v_low_, v_high_, gain_;
};

}  // namespace oxmlc::dev
