// SPICE level-1 (Shichman–Hodges) MOSFET with channel-length modulation and
// body effect, parameterized for the generic 0.13 um / 3.3 V high-voltage
// process used by the paper's memory array (see oxmlc::dev::tech130hv).
//
// Level 1 is the right fidelity here: every analog function in the RESET
// write-termination path (current mirrors M1–M6, the inverter comparator, the
// 1T-1R access transistor, pass devices in the drivers) relies on square-law
// saturation behaviour and on Vth/beta mismatch statistics, not on deep
// submicron short-channel effects.
#pragma once

#include <string>

#include "spice/device.hpp"

namespace oxmlc::dev {

enum class MosType { kNmos, kPmos };

struct MosfetParams {
  MosType type = MosType::kNmos;
  double w = 1e-6;          // channel width (m)
  double l = 0.5e-6;        // channel length (m)
  double kp = 170e-6;       // transconductance parameter uCox (A/V^2)
  double vt0 = 0.55;        // zero-bias threshold (V); magnitude for PMOS
  double lambda = 0.04;     // channel-length modulation (1/V)
  double gamma = 0.45;      // body-effect coefficient (sqrt(V))
  double phi = 0.80;        // surface potential (V)

  double beta() const { return kp * w / l; }
};

// Operating-point information returned by the model evaluation; used both for
// stamping and in unit tests of region boundaries.
struct MosOperatingPoint {
  double ids = 0.0;   // drain->source current (for the normalized NMOS view)
  double gm = 0.0;    // dIds/dVgs
  double gds = 0.0;   // dIds/dVds
  double gmbs = 0.0;  // dIds/dVbs
  enum class Region { kCutoff, kTriode, kSaturation } region = Region::kCutoff;
  double vth = 0.0;
};

// Evaluates the level-1 equations for a normalized NMOS (vds >= 0 assumed;
// callers handle source/drain swap and PMOS mirroring).
MosOperatingPoint evaluate_level1(const MosfetParams& params, double vgs, double vds,
                                  double vbs);

class Mosfet final : public spice::Device {
 public:
  // Terminal order: drain, gate, source, bulk.
  Mosfet(std::string name, int drain, int gate, int source, int bulk,
         const MosfetParams& params);

  void stamp(const spice::StampContext& ctx, spice::Stamper& stamper) override;
  std::vector<spice::StructuralEdge> dc_edges() const override;

  // Drain current at iterate x (positive into the drain for NMOS conduction).
  double drain_current(std::span<const double> x) const;

  const MosfetParams& params() const { return params_; }

  // Applies statistical mismatch: shifts Vth by delta_vth volts and scales
  // beta by (1 + delta_beta_rel). Used by the Monte-Carlo sampler.
  void apply_mismatch(double delta_vth, double delta_beta_rel);

 private:
  MosOperatingPoint evaluate_terminal(double vd, double vg, double vs, double vb,
                                      bool& swapped) const;

  MosfetParams params_;
  MosfetParams nominal_;  // pre-mismatch copy, for reset between MC trials
};

// Generic 0.13 um high-voltage (3.3 V) CMOS parameter sets. Values are
// representative textbook/PDK-class numbers, not any foundry's actual model.
namespace tech130hv {
MosfetParams nmos(double w, double l);
MosfetParams pmos(double w, double l);
inline constexpr double kVdd = 3.3;
// Pelgrom *local-mismatch* coefficients (per um of sqrt(WL)). These model the
// uncorrelated device-to-device component only; correlated (die-level) process
// shift is common-mode across a mirror and therefore excluded, as in foundry
// statistical kits' mismatch corners.
inline constexpr double kAvt = 2e-9;       // V*m  (2 mV*um)
inline constexpr double kAbeta = 0.005e-6; // relative*m (0.5 %*um)
}  // namespace tech130hv

}  // namespace oxmlc::dev
