#include "spice/transient.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "obs/registry.hpp"
#include "spice/dc.hpp"
#include "util/error.hpp"
#include "util/logging.hpp"

namespace oxmlc::spice {
namespace {

struct TransientMetrics {
  obs::Counter& runs = obs::registry().counter("transient.runs");
  obs::Counter& steps_accepted = obs::registry().counter("transient.steps.accepted");
  obs::Counter& steps_rejected = obs::registry().counter("transient.steps.rejected");
  obs::Counter& event_shrinks = obs::registry().counter("transient.event_step_shrinks");
  obs::Counter& events_fired = obs::registry().counter("transient.events_fired");
  obs::Counter& newton_iterations =
      obs::registry().counter("transient.newton_iterations");
  // Accepted step sizes on a log axis: dt spans 1e-14..1e-7 s, so log10(dt)
  // in [-14, -7) with half-decade bins; the snapshot's min/max recover the
  // extreme steps actually taken.
  obs::Histogram& log10_dt =
      obs::registry().histogram("transient.log10_dt", -14.0, -7.0, 14);
  obs::Timer& run_time = obs::registry().timer("transient.run_time");

  static TransientMetrics& get() {
    static TransientMetrics metrics;
    return metrics;
  }
};

// Collects and sorts all device breakpoints up to the stop time.
std::vector<double> collect_breakpoints(Circuit& circuit, double t_stop) {
  std::vector<double> bps;
  for (const auto& device : circuit.devices()) {
    const auto device_bps = device->breakpoints(t_stop);
    bps.insert(bps.end(), device_bps.begin(), device_bps.end());
  }
  std::sort(bps.begin(), bps.end());
  bps.erase(std::unique(bps.begin(), bps.end(),
                        [](double a, double b) { return std::fabs(a - b) < 1e-15; }),
            bps.end());
  return bps;
}

bool crossed(double before, double after, double threshold, EventDirection direction) {
  // A pre-step value sitting exactly on the threshold still arms the event
  // (it fires as soon as the signal moves off the threshold in the watched
  // direction), but a signal resting at the threshold across a step does not
  // re-fire — `after` must strictly leave the boundary in that case.
  const bool falling = (before > threshold && after <= threshold) ||
                       (before == threshold && after < threshold);
  const bool rising = (before < threshold && after >= threshold) ||
                      (before == threshold && after > threshold);
  switch (direction) {
    case EventDirection::kFalling: return falling;
    case EventDirection::kRising: return rising;
    case EventDirection::kAny: return falling || rising;
  }
  return false;
}

}  // namespace

const std::vector<double>& TransientResult::probe(const std::string& name,
                                                  const std::vector<Probe>& probes) const {
  for (std::size_t i = 0; i < probes.size(); ++i) {
    if (probes[i].name == name) return probe_values[i];
  }
  throw InvalidArgumentError("unknown probe: " + name);
}

double TransientResult::integrate(const std::vector<double>& times,
                                  const std::vector<double>& values) {
  OXMLC_CHECK(times.size() == values.size(), "integrate: series size mismatch");
  double sum = 0.0;
  for (std::size_t k = 1; k < times.size(); ++k) {
    sum += 0.5 * (values[k] + values[k - 1]) * (times[k] - times[k - 1]);
  }
  return sum;
}

TransientResult run_transient(MnaSystem& system, const TransientOptions& options,
                              const std::vector<Probe>& probes,
                              std::vector<TransientEvent> events) {
  OXMLC_CHECK(options.t_stop > 0.0, "transient: t_stop must be positive");
  OXMLC_CHECK(options.dt_initial > 0.0 && options.dt_min > 0.0,
              "transient: step sizes must be positive");

  Circuit& circuit = system.circuit();
  StampContext& ctx = system.context();
  const std::size_t n = system.dimension();

  TransientMetrics& metrics = TransientMetrics::get();
  metrics.runs.add();
  obs::ScopedTimer run_timer(metrics.run_time);

  TransientResult result;
  result.probe_values.resize(probes.size());

  // --- DC operating point at t = 0 ---
  DcOptions dc_options;
  dc_options.gmin = options.gmin;
  dc_options.newton = options.newton;
  DcResult dc = solve_dc(system, dc_options);
  if (!dc.converged) {
    throw ConvergenceError("transient: DC operating point did not converge");
  }
  result.newton_iterations += dc.newton_iterations;
  metrics.newton_iterations.add(dc.newton_iterations);

  std::vector<double> x = dc.solution;

  ctx.mode = AnalysisMode::kTransient;
  ctx.method = options.method;
  ctx.gmin = options.gmin;
  ctx.source_scale = 1.0;
  ctx.time = 0.0;
  ctx.dt = 0.0;
  ctx.x = x;
  for (auto& device : circuit.devices()) device->init_state(ctx);

  auto record = [&](double t, std::span<const double> solution) {
    result.times.push_back(t);
    for (std::size_t p = 0; p < probes.size(); ++p) {
      result.probe_values[p].push_back(probes[p].evaluate(t, solution));
    }
    if (options.store_solutions) {
      result.solutions.emplace_back(solution.begin(), solution.end());
    }
  };
  record(0.0, x);

  // Event levels at t = 0.
  std::vector<double> event_value(events.size(), 0.0);
  std::vector<bool> event_done(events.size(), false);
  for (std::size_t e = 0; e < events.size(); ++e) {
    event_value[e] = events[e].value(0.0, x);
  }

  std::vector<double> breakpoints = collect_breakpoints(circuit, options.t_stop);
  std::size_t next_bp = 0;

  double t = 0.0;
  double dt = options.dt_initial;
  std::vector<double> x_trial(n, 0.0);

  while (t < options.t_stop - 1e-18) {
    // Clamp the step to the next breakpoint and the stop time.
    while (next_bp < breakpoints.size() && breakpoints[next_bp] <= t + 1e-15) ++next_bp;
    double dt_step = std::min(dt, options.t_stop - t);
    if (next_bp < breakpoints.size() && t + dt_step > breakpoints[next_bp]) {
      // Snap to the breakpoint — unless the gap is below dt_min, which would
      // drive Newton with a degenerate step. Such a breakpoint is merged into
      // the following step: take (at most) a dt_min step past it and let the
      // skip loop above consume it on the next iteration.
      const double gap = breakpoints[next_bp] - t;
      dt_step = gap >= options.dt_min ? gap : std::min(options.dt_min, dt_step);
    }
    // Device-recommended ceiling (OxRAM state-rate limiting).
    {
      ctx.time = t;
      ctx.dt = dt_step;
      ctx.x = x;
      double rec = std::numeric_limits<double>::infinity();
      for (const auto& device : circuit.devices()) {
        rec = std::min(rec, device->recommend_dt(ctx));
      }
      if (rec < dt_step) dt_step = std::max(rec, options.dt_min);
    }

    // --- attempt the step ---
    bool accepted = false;
    while (!accepted) {
      ctx.time = t + dt_step;
      ctx.dt = dt_step;
      x_trial = x;  // seed with previous solution
      num::NewtonResult newton;
      try {
        newton = num::solve_newton(system, x_trial, options.newton,
                                   system.workspace().newton);
      } catch (const num::SingularMatrixError& error) {
        system.rethrow_singular(error, "transient t=" + std::to_string(ctx.time));
      }
      result.newton_iterations += newton.iterations;
      metrics.newton_iterations.add(newton.iterations);

      if (!newton.converged) {
        ++result.steps_rejected;
        metrics.steps_rejected.add();
        if (dt_step <= options.dt_min * 1.0001) {
          throw ConvergenceError("transient: step failed at t=" + std::to_string(t) +
                                 " with dt_min");
        }
        dt_step = std::max(options.dt_min, dt_step * 0.25);
        dt = dt_step;
        continue;
      }

      // --- event localization: shrink the step until each crossing is within
      // its resolution, then accept and fire. ---
      bool needs_smaller_step = false;
      for (std::size_t e = 0; e < events.size(); ++e) {
        if (event_done[e]) continue;
        const double after = events[e].value(ctx.time, x_trial);
        if (crossed(event_value[e], after, events[e].threshold, events[e].direction) &&
            dt_step > events[e].resolution && dt_step > options.dt_min * 2.0) {
          needs_smaller_step = true;
          break;
        }
      }
      if (needs_smaller_step) {
        metrics.event_shrinks.add();
        dt_step = std::max({options.dt_min, dt_step * 0.25});
        continue;
      }
      accepted = true;
    }

    // --- commit ---
    t += dt_step;
    ctx.time = t;
    ctx.dt = dt_step;
    x = x_trial;
    ctx.x = x;
    for (auto& device : circuit.devices()) device->commit_step(ctx);
    ++result.steps_accepted;
    metrics.steps_accepted.add();
    metrics.log10_dt.observe(std::log10(dt_step));
    record(t, x);

    // --- fire events whose crossing landed inside this accepted step ---
    bool waveforms_changed = false;
    for (std::size_t e = 0; e < events.size(); ++e) {
      if (event_done[e]) continue;
      const double after = events[e].value(t, x);
      if (crossed(event_value[e], after, events[e].threshold, events[e].direction)) {
        result.fired_events.push_back({events[e].name, t});
        metrics.events_fired.add();
        if (events[e].on_fire) {
          events[e].on_fire(t, x);
          waveforms_changed = true;
        }
        if (events[e].one_shot) event_done[e] = true;
      }
      event_value[e] = after;
    }
    if (waveforms_changed) {
      // Callbacks typically command StoppablePulse edges: refresh breakpoints.
      breakpoints = collect_breakpoints(circuit, options.t_stop);
      next_bp = static_cast<std::size_t>(
          std::lower_bound(breakpoints.begin(), breakpoints.end(), t + 1e-15) -
          breakpoints.begin());
      dt = options.dt_initial;  // resolve the commanded edge accurately
    }

    if (options.stop_when && options.stop_when(t)) break;

    // Grow the step after success.
    dt = std::min(options.dt_max, std::max(dt, dt_step) * options.dt_growth);
  }

  result.completed = true;
  return result;
}

}  // namespace oxmlc::spice
