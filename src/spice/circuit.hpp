// Circuit container: named nodes, owned devices, unknown-vector layout.
#pragma once

#include <memory>
#include <span>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "spice/device.hpp"

namespace oxmlc::spice {

class Circuit {
 public:
  Circuit() = default;
  Circuit(const Circuit&) = delete;
  Circuit& operator=(const Circuit&) = delete;
  Circuit(Circuit&&) = default;
  Circuit& operator=(Circuit&&) = default;

  // Returns the unknown index for a named node, creating it on first use.
  // "0", "gnd" and "GND" map to kGround.
  int node(const std::string& name);

  // Looks up an existing node; throws InvalidArgumentError if absent.
  int node_index(const std::string& name) const;

  bool has_node(const std::string& name) const;

  std::size_t node_count() const { return node_names_.size(); }

  // Constructs a device in place. Device constructors take the circuit-
  // resolved node indices, so the typical call site reads:
  //   auto& r = circuit.add<Resistor>("Rbl", c.node("bl"), c.node("0"), 10e3);
  template <typename DeviceT, typename... Args>
  DeviceT& add(Args&&... args) {
    ensure_not_finalized();
    auto device = std::make_unique<DeviceT>(std::forward<Args>(args)...);
    DeviceT& ref = *device;
    devices_.push_back(std::move(device));
    return ref;
  }

  // Assigns branch-current unknown indices. Must be called before analysis;
  // adding devices afterwards throws.
  void finalize();
  bool finalized() const { return finalized_; }

  // node voltages + branch currents
  std::size_t unknown_count() const;

  std::span<const std::unique_ptr<Device>> devices() const { return devices_; }
  std::span<std::unique_ptr<Device>> devices() { return devices_; }

  // Device lookup by name (nullptr if absent).
  Device* find_device(const std::string& name);

  // Name of the node with unknown index `idx` ("0" for ground).
  const std::string& node_name(int idx) const;

 private:
  void ensure_not_finalized() const;

  std::unordered_map<std::string, int> node_ids_;
  std::vector<std::string> node_names_;
  std::vector<std::unique_ptr<Device>> devices_;
  std::size_t branch_total_ = 0;
  bool finalized_ = false;
};

}  // namespace oxmlc::spice
