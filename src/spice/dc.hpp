// DC analyses: operating point (with gmin and source-stepping homotopies) and
// parameterized DC sweeps (used for the I-V characteristics of Figs. 1c / 5).
#pragma once

#include <functional>
#include <vector>

#include "numeric/newton.hpp"
#include "spice/mna.hpp"

namespace oxmlc::spice {

struct DcOptions {
  num::NewtonOptions newton;
  double gmin = 1e-12;
  // gmin stepping ladder: start at gmin_start and divide by gmin_ratio until
  // reaching `gmin`. Applied only when the direct solve fails.
  double gmin_start = 1e-3;
  double gmin_ratio = 10.0;
  // Source stepping: number of homotopy points from 0 to full bias. Applied
  // only when gmin stepping also fails.
  std::size_t source_steps = 20;
  // Run the circuit static analyzer (spice/analyze) before the first Newton
  // solve: error-severity findings (V-loops, current cutsets, structural
  // singularity) throw InvalidArgumentError with named nodes/devices instead
  // of surfacing as a singular LU mid-iteration. Warnings are logged.
  bool precheck = true;
};

struct DcResult {
  bool converged = false;
  std::vector<double> solution;     // final unknown vector
  std::size_t newton_iterations = 0;
  std::string strategy;             // "direct", "gmin-stepping", "source-stepping"
};

// Solves for the DC operating point. `initial_guess` (optional) seeds Newton;
// pass the previous sweep point's solution for fast continuation.
DcResult solve_dc(MnaSystem& system, const DcOptions& options = {},
                  const std::vector<double>* initial_guess = nullptr);

// DC sweep driver: `set_parameter(value)` mutates the circuit (e.g. a source
// voltage) before each point; each point is seeded with the previous solution.
struct SweepPoint {
  double parameter = 0.0;
  DcResult result;
};

std::vector<SweepPoint> dc_sweep(MnaSystem& system,
                                 const std::function<void(double)>& set_parameter,
                                 const std::vector<double>& values,
                                 const DcOptions& options = {});

}  // namespace oxmlc::spice
