#include "spice/netlist.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <memory>
#include <sstream>

#include "devices/diode.hpp"
#include "devices/mosfet.hpp"
#include "devices/passive.hpp"
#include "devices/sources.hpp"
#include "oxram/device.hpp"
#include "spice/waveform.hpp"
#include "util/error.hpp"

namespace oxmlc::spice {
namespace {

[[noreturn]] void fail(std::size_t line, const char* code, const std::string& message) {
  throw NetlistError(line, code, message);
}

std::string lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return s;
}

// ---------------------------------------------------------------------------
// value parsing: numbers with SI suffixes
// ---------------------------------------------------------------------------

// Parses a number with an optional SI scale suffix. `unit_tail` (optional)
// receives whatever letters remain after the scale suffix — "ohm" in "10kohm",
// "" in "1n", "x" in "3x" — so the caller can lint unrecognized tails.
bool parse_plain_number(const std::string& token, double& out,
                        std::string* unit_tail = nullptr) {
  if (token.empty()) return false;
  char* end = nullptr;
  const double base = std::strtod(token.c_str(), &end);
  if (end == token.c_str()) return false;
  std::string suffix = lower(std::string(end));
  // Strip trailing unit letters after the scale suffix ("10kohm", "5uF").
  static const struct {
    const char* name;
    double scale;
  } kSuffixes[] = {
      {"meg", 1e6}, {"t", 1e12}, {"g", 1e9}, {"k", 1e3}, {"m", 1e-3},
      {"u", 1e-6},  {"n", 1e-9}, {"p", 1e-12}, {"f", 1e-15},
  };
  double scale = 1.0;
  std::string tail = suffix;
  for (const auto& s : kSuffixes) {
    if (suffix.starts_with(s.name)) {
      scale = s.scale;
      tail = suffix.substr(std::string(s.name).size());
      break;
    }
  }
  if (unit_tail != nullptr) *unit_tail = tail;
  out = base * scale;
  return true;
}

// Unit words that legitimately trail a scale suffix ("10kohm", "5uF", "3ns").
// Anything else is flagged as OXA007 — it parses (the tail is ignored, SPICE
// convention) but usually indicates a typo like "10kk" or "1qF".
bool known_unit_tail(const std::string& tail) {
  static const char* kUnits[] = {"",  "ohm", "ohms", "f",   "farad", "h",  "henry",
                                 "v", "a",   "s",    "sec", "hz",    "amp"};
  return std::find_if(std::begin(kUnits), std::end(kUnits), [&](const char* u) {
           return tail == u;
         }) != std::end(kUnits);
}

// Recursive-descent expression evaluator for {..} values.
class ExpressionParser {
 public:
  ExpressionParser(std::string text, const std::map<std::string, double>& params)
      : text_(std::move(text)), params_(params) {}

  double parse() {
    const double v = expression();
    skip_space();
    OXMLC_CHECK(pos_ == text_.size(), "trailing characters in expression: " + text_);
    return v;
  }

 private:
  void skip_space() {
    while (pos_ < text_.size() && std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool consume(char c) {
    skip_space();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  double expression() {
    double value = term();
    while (true) {
      if (consume('+')) {
        value += term();
      } else if (consume('-')) {
        value -= term();
      } else {
        return value;
      }
    }
  }

  double term() {
    double value = factor();
    while (true) {
      if (consume('*')) {
        value *= factor();
      } else if (consume('/')) {
        const double d = factor();
        OXMLC_CHECK(d != 0.0, "division by zero in expression: " + text_);
        value /= d;
      } else {
        return value;
      }
    }
  }

  double factor() {
    skip_space();
    if (consume('(')) {
      const double v = expression();
      OXMLC_CHECK(consume(')'), "missing ')' in expression: " + text_);
      return v;
    }
    if (consume('-')) return -factor();
    if (consume('+')) return factor();

    // Number (with suffix) or parameter name.
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isalnum(static_cast<unsigned char>(text_[pos_])) || text_[pos_] == '.' ||
            text_[pos_] == '_' ||
            ((text_[pos_] == '+' || text_[pos_] == '-') && pos_ > start &&
             (text_[pos_ - 1] == 'e' || text_[pos_ - 1] == 'E')))) {
      ++pos_;
    }
    OXMLC_CHECK(pos_ > start, "expected number or name in expression: " + text_);
    const std::string token = text_.substr(start, pos_ - start);
    if (std::isdigit(static_cast<unsigned char>(token[0])) || token[0] == '.') {
      double v = 0.0;
      OXMLC_CHECK(parse_plain_number(token, v), "bad number in expression: " + token);
      return v;
    }
    const auto it = params_.find(lower(token));
    OXMLC_CHECK(it != params_.end(), "unknown parameter in expression: " + token);
    return it->second;
  }

  // By value: parse_value hands us a temporary substring.
  std::string text_;
  const std::map<std::string, double>& params_;
  std::size_t pos_ = 0;
};

// ---------------------------------------------------------------------------
// tokenization
// ---------------------------------------------------------------------------

// Splits a card into tokens, keeping "(...)" groups attached to the previous
// token (so "PULSE(0 1 ...)" is one functional token with arguments).
std::vector<std::string> tokenize(const std::string& line, std::size_t line_no) {
  std::vector<std::string> tokens;
  std::size_t i = 0;
  while (i < line.size()) {
    if (std::isspace(static_cast<unsigned char>(line[i]))) {
      ++i;
      continue;
    }
    std::size_t start = i;
    int depth = 0;
    while (i < line.size()) {
      const char c = line[i];
      if (c == '(' || c == '{') ++depth;
      if (c == ')' || c == '}') {
        if (depth == 0) {
          fail(line_no, analyze::codes::kMalformedCard, "unbalanced ')' in: " + line);
        }
        --depth;
      }
      if (depth == 0 && std::isspace(static_cast<unsigned char>(c))) break;
      ++i;
    }
    if (depth != 0) {
      fail(line_no, analyze::codes::kMalformedCard, "unbalanced '(' in: " + line);
    }
    tokens.push_back(line.substr(start, i - start));
  }
  return tokens;
}

// Splits "NAME(a b c)" into name and argument tokens.
bool split_function(const std::string& token, std::string& name,
                    std::vector<std::string>& args) {
  const std::size_t open = token.find('(');
  if (open == std::string::npos || token.back() != ')') return false;
  name = lower(token.substr(0, open));
  const std::string inner = token.substr(open + 1, token.size() - open - 2);
  std::istringstream is(inner);
  std::string arg;
  args.clear();
  while (is >> arg) args.push_back(arg);
  return true;
}

// key=value sugar: returns true and fills key/value when the token has '='.
bool split_assignment(const std::string& token, std::string& key, std::string& value) {
  const std::size_t eq = token.find('=');
  if (eq == std::string::npos) return false;
  key = lower(token.substr(0, eq));
  value = token.substr(eq + 1);
  return !key.empty() && !value.empty();
}

}  // namespace

double parse_value(const std::string& token, const std::map<std::string, double>& params) {
  OXMLC_CHECK(!token.empty(), "empty value token");
  if (token.front() == '{') {
    OXMLC_CHECK(token.back() == '}', "unterminated expression: " + token);
    ExpressionParser parser(token.substr(1, token.size() - 2), params);
    return parser.parse();
  }
  double v = 0.0;
  if (parse_plain_number(token, v)) return v;
  // Bare parameter reference.
  const auto it = params.find(lower(token));
  OXMLC_CHECK(it != params.end(), "cannot parse value: " + token);
  return it->second;
}

ParsedNetlist parse_netlist(const std::string& text) {
  ParsedNetlist out;
  Circuit& c = out.circuit;

  // --- join continuation lines, strip comments ---
  std::vector<std::pair<std::size_t, std::string>> cards;
  {
    std::istringstream is(text);
    std::string raw;
    std::size_t line_no = 0;
    while (std::getline(is, raw)) {
      ++line_no;
      const std::size_t comment = raw.find(';');
      if (comment != std::string::npos) raw.erase(comment);
      // Trim.
      const auto is_space = [](unsigned char ch) { return std::isspace(ch); };
      while (!raw.empty() && is_space(static_cast<unsigned char>(raw.back()))) raw.pop_back();
      std::size_t first = 0;
      while (first < raw.size() && is_space(static_cast<unsigned char>(raw[first]))) ++first;
      raw.erase(0, first);
      if (raw.empty()) continue;
      if (raw[0] == '*') {
        if (cards.empty() && out.title.empty()) out.title = raw.substr(1);
        continue;
      }
      if (raw[0] == '+') {
        if (cards.empty()) {
          fail(line_no, analyze::codes::kMalformedCard,
               "continuation '+' with no previous card");
        }
        cards.back().second += " " + raw.substr(1);
        continue;
      }
      cards.emplace_back(line_no, raw);
    }
  }

  auto& params = out.parameters;

  // Card being processed right now; the value/lint lambdas close over these so
  // inner helpers (waveforms, key=value tails) report accurate context.
  std::size_t current_line = 0;
  std::string current_device;

  // OXA007: a numeric literal whose letters after the SI scale suffix are not
  // a known unit word. The value still parses (the tail is ignored, SPICE
  // convention) but "10kk" or "1qF" is almost always a typo.
  auto lint_token = [&](const std::string& token) {
    if (token.empty() || token.front() == '{') return;
    double parsed = 0.0;
    std::string tail;
    if (!parse_plain_number(token, parsed, &tail)) return;
    if (known_unit_tail(tail)) return;
    analyze::Diagnostic d;
    d.severity = analyze::Severity::kWarning;
    d.code = analyze::codes::kSuspiciousSuffix;
    d.device = current_device;
    d.message = "line " + std::to_string(current_line) + ": value literal '" + token +
                "' has unrecognized unit tail '" + tail + "' (ignored)";
    d.fix_hint = "check the SI suffix (f p n u m k meg g t); units like 'ohm' or "
                 "'F' may follow it";
    out.lint.add(std::move(d));
  };

  auto value = [&](const std::string& token) -> double {
    lint_token(token);
    try {
      return parse_value(token, params);
    } catch (const InvalidArgumentError& e) {
      fail(current_line, analyze::codes::kBadValue, e.what());
    }
  };

  // Parses optional key=value tail into a map (uppercase-insensitive keys).
  auto parse_options = [&](const std::vector<std::string>& tokens, std::size_t from,
                           std::size_t line_no) {
    std::map<std::string, double> options;
    for (std::size_t k = from; k < tokens.size(); ++k) {
      std::string key, val;
      if (!split_assignment(tokens[k], key, val)) {
        fail(line_no, analyze::codes::kMalformedCard,
             "expected key=value, got: " + tokens[k]);
      }
      options[key] = value(val);
    }
    return options;
  };

  auto make_waveform = [&](const std::vector<std::string>& tokens, std::size_t from,
                           std::size_t line_no) -> std::shared_ptr<Waveform> {
    if (from >= tokens.size()) {
      fail(line_no, analyze::codes::kMalformedCard, "source needs a value or waveform");
    }
    std::string fn;
    std::vector<std::string> args;
    if (split_function(tokens[from], fn, args)) {
      if (fn == "pulse") {
        if (args.size() < 2) {
          fail(line_no, analyze::codes::kMalformedCard, "PULSE needs at least v1 v2");
        }
        PulseSpec spec;
        spec.v1 = value(args[0]);
        spec.v2 = value(args[1]);
        if (args.size() > 2) spec.delay = value(args[2]);
        if (args.size() > 3) spec.rise = value(args[3]);
        if (args.size() > 4) spec.fall = value(args[4]);
        if (args.size() > 5) spec.width = value(args[5]);
        if (args.size() > 6) spec.period = value(args[6]);
        return std::make_shared<PulseWaveform>(spec);
      }
      if (fn == "pwl") {
        if (args.size() < 2 || args.size() % 2 != 0) {
          fail(line_no, analyze::codes::kMalformedCard, "PWL needs time/value pairs");
        }
        std::vector<std::pair<double, double>> points;
        for (std::size_t k = 0; k + 1 < args.size(); k += 2) {
          points.emplace_back(value(args[k]), value(args[k + 1]));
        }
        return std::make_shared<PwlWaveform>(std::move(points));
      }
      if (fn == "sin") {
        if (args.size() < 3) {
          fail(line_no, analyze::codes::kMalformedCard,
               "SIN needs offset amplitude frequency");
        }
        return std::make_shared<SinWaveform>(value(args[0]), value(args[1]),
                                             value(args[2]),
                                             args.size() > 3 ? value(args[3]) : 0.0);
      }
      fail(line_no, analyze::codes::kUnknownWaveform, "unknown waveform: " + fn);
    }
    // "DC <v>" or a bare value.
    if (lower(tokens[from]) == "dc") {
      if (from + 1 >= tokens.size()) {
        fail(line_no, analyze::codes::kMalformedCard, "DC needs a value");
      }
      return std::make_shared<DcWaveform>(value(tokens[from + 1]));
    }
    return std::make_shared<DcWaveform>(value(tokens[from]));
  };

  for (const auto& [line_no, card] : cards) {
    current_line = line_no;
    current_device.clear();
    const auto tokens = tokenize(card, line_no);
    if (tokens.empty()) continue;
    const std::string head = tokens[0];

    // --- directives ---
    if (head[0] == '.') {
      const std::string directive = lower(head);
      if (directive == ".end") break;
      if (directive == ".param") {
        for (std::size_t k = 1; k < tokens.size(); ++k) {
          std::string key, val;
          if (!split_assignment(tokens[k], key, val)) {
            fail(line_no, analyze::codes::kMalformedCard,
                 ".param expects NAME=VALUE, got: " + tokens[k]);
          }
          params[key] = value(val);
        }
        continue;
      }
      if (directive == ".nolint") {
        for (std::size_t k = 1; k < tokens.size(); ++k) {
          std::string code = tokens[k];
          std::transform(code.begin(), code.end(), code.begin(), [](unsigned char ch) {
            return static_cast<char>(std::toupper(ch));
          });
          out.suppressed.push_back(std::move(code));
        }
        continue;
      }
      fail(line_no, analyze::codes::kUnknownDirective, "unknown directive: " + head);
    }

    out.device_names.push_back(head);
    current_device = head;
    const char kind = static_cast<char>(std::toupper(static_cast<unsigned char>(head[0])));
    auto node = [&](std::size_t idx) {
      if (idx >= tokens.size()) {
        fail(line_no, analyze::codes::kMalformedCard, "missing node on card: " + card);
      }
      return c.node(tokens[idx]);
    };

    // Device constructors reject out-of-domain parameters (non-positive R/C/L,
    // zero MOSFET W/L) with an InvalidArgumentError that knows nothing about
    // netlist lines; re-badge those as OXP004 with the line attached.
    try {
    switch (kind) {
      case 'R':
        if (tokens.size() < 4) fail(line_no, analyze::codes::kMalformedCard, "R card: R<name> n1 n2 value");
        c.add<dev::Resistor>(head, node(1), node(2), value(tokens[3]));
        break;
      case 'C':
        if (tokens.size() < 4) fail(line_no, analyze::codes::kMalformedCard, "C card: C<name> n1 n2 value");
        c.add<dev::Capacitor>(head, node(1), node(2), value(tokens[3]));
        break;
      case 'L':
        if (tokens.size() < 4) fail(line_no, analyze::codes::kMalformedCard, "L card: L<name> n1 n2 value");
        c.add<dev::Inductor>(head, node(1), node(2), value(tokens[3]));
        break;
      case 'V':
        c.add<dev::VoltageSource>(head, node(1), node(2),
                                  make_waveform(tokens, 3, line_no));
        break;
      case 'I':
        c.add<dev::CurrentSource>(head, node(1), node(2),
                                  make_waveform(tokens, 3, line_no));
        break;
      case 'E':
        if (tokens.size() < 6) fail(line_no, analyze::codes::kMalformedCard, "E card: E<name> o+ o- i+ i- gain");
        c.add<dev::Vcvs>(head, node(1), node(2), node(3), node(4), value(tokens[5]));
        break;
      case 'G':
        if (tokens.size() < 6) fail(line_no, analyze::codes::kMalformedCard, "G card: G<name> o+ o- i+ i- gm");
        c.add<dev::Vccs>(head, node(1), node(2), node(3), node(4), value(tokens[5]));
        break;
      case 'F':
      case 'H': {
        if (tokens.size() < 5) {
          fail(line_no, analyze::codes::kMalformedCard,
               "F/H card: <name> o+ o- Vsensor gain");
        }
        auto* sensor = dynamic_cast<dev::VoltageSource*>(c.find_device(tokens[3]));
        if (sensor == nullptr) {
          fail(line_no, analyze::codes::kBadReference,
               "controlling source not found (must be a V card declared "
               "earlier): " + tokens[3]);
        }
        if (kind == 'F') {
          c.add<dev::Cccs>(head, node(1), node(2), *sensor, value(tokens[4]));
        } else {
          c.add<dev::Ccvs>(head, node(1), node(2), *sensor, value(tokens[4]));
        }
        break;
      }
      case 'D': {
        if (tokens.size() < 3) fail(line_no, analyze::codes::kMalformedCard, "D card: D<name> anode cathode");
        const auto options = parse_options(tokens, 3, line_no);
        dev::DiodeParams p;
        if (options.count("is")) p.saturation_current = options.at("is");
        if (options.count("n")) p.emission_coefficient = options.at("n");
        c.add<dev::Diode>(head, node(1), node(2), p);
        break;
      }
      case 'M': {
        if (tokens.size() < 6) {
          fail(line_no, analyze::codes::kMalformedCard,
               "M card: M<name> d g s b NMOS|PMOS [W=..] [L=..]");
        }
        const std::string model = lower(tokens[5]);
        double w = 1e-6, l = 0.5e-6;
        const auto options = parse_options(tokens, 6, line_no);
        if (options.count("w")) w = options.at("w");
        if (options.count("l")) l = options.at("l");
        dev::MosfetParams p;
        if (model == "nmos") {
          p = dev::tech130hv::nmos(w, l);
        } else if (model == "pmos") {
          p = dev::tech130hv::pmos(w, l);
        } else {
          fail(line_no, analyze::codes::kUnknownWaveform, "unknown MOSFET model: " + tokens[5]);
        }
        if (options.count("vt0")) p.vt0 = options.at("vt0");
        if (options.count("kp")) p.kp = options.at("kp");
        if (options.count("lambda")) p.lambda = options.at("lambda");
        c.add<dev::Mosfet>(head, node(1), node(2), node(3), node(4), p);
        break;
      }
      case 'S': {
        if (tokens.size() < 5) fail(line_no, analyze::codes::kMalformedCard, "S card: S<name> a b c+ c- [VT=..]");
        const auto options = parse_options(tokens, 5, line_no);
        dev::VSwitch::Params p;
        if (options.count("vt")) p.threshold = options.at("vt");
        if (options.count("ron")) p.r_on = options.at("ron");
        if (options.count("roff")) p.r_off = options.at("roff");
        c.add<dev::VSwitch>(head, node(1), node(2), node(3), node(4), p);
        break;
      }
      case 'X': {
        if (tokens.size() < 4 || lower(tokens[3]) != "oxram") {
          fail(line_no, analyze::codes::kMalformedCard,
               "X card: X<name> te be OXRAM [GAP=..] [VIRGIN=0|1]");
        }
        const auto options = parse_options(tokens, 4, line_no);
        oxram::OxramParams p;
        double gap = options.count("gap") ? options.at("gap") : p.g_min;
        const bool virgin = options.count("virgin") && options.at("virgin") != 0.0;
        if (virgin && !options.count("gap")) gap = p.g_virgin;
        c.add<oxram::OxramDevice>(head, node(1), node(2), p, gap, virgin);
        break;
      }
      default:
        fail(line_no, analyze::codes::kUnknownCard, "unknown device card: " + head);
    }
    } catch (const NetlistError&) {
      throw;
    } catch (const InvalidArgumentError& e) {
      fail(line_no, analyze::codes::kBadValue, e.what());
    }
  }

  out.lint.suppress(out.suppressed);
  return out;
}

}  // namespace oxmlc::spice
