// AC (small-signal) analysis.
//
// Linearizes the circuit at its DC operating point — the Newton Jacobian
// `assemble()` produces *is* the exact small-signal conductance matrix G,
// including every nonlinear device's gm/gds/OxRAM conductance — collects the
// reactive matrix B from the devices' charge/flux stamps, and solves
//
//   (G + j*w*B) x = u(ac)
//
// over a logarithmic frequency sweep. Used for comparator/sense-path
// bandwidth analysis and as a general .ac facility of the engine.
#pragma once

#include <complex>
#include <vector>

#include "spice/dc.hpp"
#include "spice/mna.hpp"
#include "util/units.hpp"

namespace oxmlc::spice {

struct AcOptions {
  double f_start = 1e3;
  double f_stop = 1e9;
  std::size_t points_per_decade = 20;
  DcOptions dc;  // operating-point solve options
};

struct AcResult {
  bool converged = false;                  // DC OP found and every point solved
  std::vector<double> frequencies;         // Hz
  // solutions[k][unknown]: complex phasor of each unknown at frequencies[k].
  std::vector<std::vector<std::complex<double>>> solutions;
  std::vector<double> dc_operating_point;  // the bias the sweep linearized at

  // Helpers for node `unknown_index` (throws on bad index).
  double magnitude(std::size_t point, int unknown_index) const;
  double magnitude_db(std::size_t point, int unknown_index) const;
  double phase_deg(std::size_t point, int unknown_index) const;

  // Index of the first frequency where |H| drops below |H(0)| / sqrt(2)
  // (-3 dB); returns frequencies.size() when it never does.
  std::size_t corner_index(int unknown_index) const;
};

// Runs the sweep. AC excitations are the sources' `set_ac` phasors.
AcResult run_ac(MnaSystem& system, const AcOptions& options = {});

}  // namespace oxmlc::spice
