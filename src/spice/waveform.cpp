#include "spice/waveform.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"
#include "util/units.hpp"

namespace oxmlc::spice {

PulseWaveform::PulseWaveform(const PulseSpec& spec) : spec_(spec) {
  OXMLC_CHECK(spec.rise > 0.0 && spec.fall > 0.0, "pulse rise/fall must be positive");
  OXMLC_CHECK(spec.width >= 0.0, "pulse width must be non-negative");
}

double PulseWaveform::value(double t) const {
  const auto& s = spec_;
  if (t < s.delay) return s.v1;
  double local = t - s.delay;
  if (s.period > 0.0) local = std::fmod(local, s.period);
  if (local < s.rise) return s.v1 + (s.v2 - s.v1) * local / s.rise;
  local -= s.rise;
  if (local < s.width) return s.v2;
  local -= s.width;
  if (local < s.fall) return s.v2 + (s.v1 - s.v2) * local / s.fall;
  return s.v1;
}

std::vector<double> PulseWaveform::breakpoints(double horizon) const {
  const auto& s = spec_;
  std::vector<double> bps;
  const double cycle = s.rise + s.width + s.fall;
  double base = s.delay;
  for (int rep = 0; rep < 10000; ++rep) {
    for (double offset : {0.0, s.rise, s.rise + s.width, cycle}) {
      const double t = base + offset;
      if (t > 0.0 && t <= horizon) bps.push_back(t);
    }
    if (s.period <= 0.0 || base + s.period > horizon) break;
    base += s.period;
  }
  std::sort(bps.begin(), bps.end());
  return bps;
}

PwlWaveform::PwlWaveform(std::vector<std::pair<double, double>> points)
    : points_(std::move(points)) {
  OXMLC_CHECK(!points_.empty(), "PWL waveform needs at least one point");
  OXMLC_CHECK(std::is_sorted(points_.begin(), points_.end(),
                             [](const auto& a, const auto& b) { return a.first < b.first; }),
              "PWL points must be sorted by time");
}

double PwlWaveform::value(double t) const {
  if (t <= points_.front().first) return points_.front().second;
  if (t >= points_.back().first) return points_.back().second;
  const auto it = std::lower_bound(
      points_.begin(), points_.end(), t,
      [](const auto& p, double time) { return p.first < time; });
  const auto& hi = *it;
  const auto& lo = *(it - 1);
  const double w = (t - lo.first) / (hi.first - lo.first);
  return lo.second + w * (hi.second - lo.second);
}

std::vector<double> PwlWaveform::breakpoints(double horizon) const {
  std::vector<double> bps;
  for (const auto& [t, v] : points_) {
    (void)v;
    if (t > 0.0 && t <= horizon) bps.push_back(t);
  }
  return bps;
}

SinWaveform::SinWaveform(double offset, double amplitude, double frequency, double delay,
                         double damping)
    : offset_(offset), amplitude_(amplitude), frequency_(frequency), delay_(delay),
      damping_(damping) {
  OXMLC_CHECK(frequency > 0.0, "SIN waveform frequency must be positive");
}

double SinWaveform::value(double t) const {
  if (t < delay_) return offset_;
  const double x = t - delay_;
  return offset_ + amplitude_ * std::exp(-damping_ * x) *
                       std::sin(2.0 * phys::kPi * frequency_ * x);
}

StoppablePulse::StoppablePulse(const PulseSpec& spec) : spec_(spec) {
  OXMLC_CHECK(spec.rise > 0.0 && spec.fall > 0.0, "pulse rise/fall must be positive");
}

double StoppablePulse::value(double t) const {
  const PulseWaveform natural(spec_);
  if (stop_time_ < 0.0 || t <= stop_time_) return natural.value(t);
  // Commanded ramp-down from the value held at the stop instant.
  const double into_fall = t - stop_time_;
  if (into_fall >= spec_.fall) return spec_.v1;
  return value_at_stop_ + (spec_.v1 - value_at_stop_) * into_fall / spec_.fall;
}

std::vector<double> StoppablePulse::breakpoints(double horizon) const {
  auto bps = PulseWaveform(spec_).breakpoints(horizon);
  if (stop_time_ >= 0.0) {
    if (stop_time_ <= horizon) bps.push_back(stop_time_);
    if (stop_time_ + spec_.fall <= horizon) bps.push_back(stop_time_ + spec_.fall);
    std::sort(bps.begin(), bps.end());
  }
  return bps;
}

void StoppablePulse::stop(double t) {
  if (stop_time_ >= 0.0) return;
  value_at_stop_ = PulseWaveform(spec_).value(t);
  stop_time_ = t;
}

void StoppablePulse::reset_command() {
  stop_time_ = -1.0;
  value_at_stop_ = 0.0;
}

}  // namespace oxmlc::spice
