// MNA assembly: adapts a Circuit to the Newton solver's NonlinearSystem.
#pragma once

#include <span>
#include <string>

#include "numeric/linear_error.hpp"
#include "numeric/newton.hpp"
#include "spice/analyze/analyzer.hpp"
#include "spice/circuit.hpp"

namespace oxmlc::spice {

// Reusable per-system solver scratch. Ownership rules:
//  - lives exactly as long as its MnaSystem; the DC/transient drivers borrow
//    it for every solve_newton call so the Jacobian pattern cache and the LU
//    symbolic analysis persist across timesteps and sweep points;
//  - NOT thread-safe — Monte-Carlo trials build one Circuit + MnaSystem (and
//    thus one workspace) per thread and reuse it across claimed chunks.
struct AssemblyWorkspace {
  num::NewtonWorkspace newton;
};

class MnaSystem final : public num::NonlinearSystem {
 public:
  explicit MnaSystem(Circuit& circuit) : circuit_(circuit) {
    circuit_.finalize();
  }

  std::size_t dimension() const override { return circuit_.unknown_count(); }

  void assemble(std::span<const double> x, num::TripletMatrix& jacobian,
                std::span<double> residual) override;

  // Per-component Newton step clamp: node voltages move at most 1 V per
  // iteration (exponential device models diverge otherwise); branch currents
  // are unconstrained.
  double max_step(std::size_t component) const override {
    return component < circuit_.node_count() ? 1.0 : 0.0;
  }

  // The analysis drivers configure the context between Newton solves.
  StampContext& context() { return context_; }
  const StampContext& context() const { return context_; }

  Circuit& circuit() { return circuit_; }

  // Solver scratch reused across every Newton solve on this system (see
  // AssemblyWorkspace for ownership rules).
  AssemblyWorkspace& workspace() { return workspace_; }

  // Installs a bordered-block partition on the workspace solver: subsequent
  // DC/transient Newton solves factorize through num::BlockSchurLu instead of
  // the monolithic paths. Partitions come from
  // analyze::derive_partition/auto_partition or directly from an array
  // builder that knows its border nodes. clear_partition() reverts.
  void set_partition(const num::BlockPartition& partition,
                     const num::SchurOptions& options);
  void clear_partition();

  // Codes the precheck drops (forwarded to the analyzer; set before the first
  // solve — the report is computed once and cached).
  analyze::AnalyzerOptions& analyzer_options() { return analyzer_options_; }

  // Static-analysis gate run by the DC/transient drivers before the first
  // solve: warnings are logged, error-severity findings throw
  // InvalidArgumentError with the full formatted report — replacing the
  // singular-LU throw the broken topology would otherwise produce mid-Newton.
  // The report is cached; repeated solves (sweeps, Monte-Carlo) pay nothing.
  const analyze::DiagnosticReport& precheck();

  // "node 'bl' (devices RBL, CBL, X1)" or "branch current of 'VSL'" for the
  // unknown-vector index `idx`; used to translate LU pivot failures.
  std::string describe_unknown(std::size_t idx) const;

  // Re-throws a factorization failure as a ConvergenceError naming the
  // offending node/branch and its connected devices instead of a bare column.
  [[noreturn]] void rethrow_singular(const num::SingularMatrixError& error,
                                     const std::string& analysis) const;

 private:
  Circuit& circuit_;
  StampContext context_;
  AssemblyWorkspace workspace_;
  analyze::AnalyzerOptions analyzer_options_;
  bool prechecked_ = false;
  analyze::DiagnosticReport precheck_report_;
};

}  // namespace oxmlc::spice
