// MNA assembly: adapts a Circuit to the Newton solver's NonlinearSystem.
#pragma once

#include <span>

#include "numeric/newton.hpp"
#include "spice/circuit.hpp"

namespace oxmlc::spice {

class MnaSystem final : public num::NonlinearSystem {
 public:
  explicit MnaSystem(Circuit& circuit) : circuit_(circuit) {
    circuit_.finalize();
  }

  std::size_t dimension() const override { return circuit_.unknown_count(); }

  void assemble(std::span<const double> x, num::TripletMatrix& jacobian,
                std::span<double> residual) override;

  // Per-component Newton step clamp: node voltages move at most 1 V per
  // iteration (exponential device models diverge otherwise); branch currents
  // are unconstrained.
  double max_step(std::size_t component) const override {
    return component < circuit_.node_count() ? 1.0 : 0.0;
  }

  // The analysis drivers configure the context between Newton solves.
  StampContext& context() { return context_; }
  const StampContext& context() const { return context_; }

  Circuit& circuit() { return circuit_; }

 private:
  Circuit& circuit_;
  StampContext context_;
};

}  // namespace oxmlc::spice
