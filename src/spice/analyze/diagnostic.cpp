#include "spice/analyze/diagnostic.hpp"

#include <algorithm>

namespace oxmlc::spice::analyze {

const char* severity_name(Severity severity) {
  switch (severity) {
    case Severity::kInfo: return "info";
    case Severity::kWarning: return "warning";
    case Severity::kError: return "error";
  }
  return "unknown";
}

std::string Diagnostic::format() const {
  std::string out = std::string(severity_name(severity)) + "[" + code + "]: " + message;
  if (!device.empty() || !nodes.empty()) {
    out += " (";
    if (!device.empty()) out += "device " + device;
    if (!nodes.empty()) {
      if (!device.empty()) out += ", ";
      out += nodes.size() == 1 ? "node " : "nodes ";
      for (std::size_t i = 0; i < nodes.size(); ++i) {
        if (i > 0) out += ", ";
        out += nodes[i];
      }
    }
    out += ")";
  }
  if (!fix_hint.empty()) out += " — " + fix_hint;
  return out;
}

obs::Json Diagnostic::to_json() const {
  obs::Json j = obs::Json::object();
  j.set("severity", severity_name(severity));
  j.set("code", code);
  if (!device.empty()) j.set("device", device);
  obs::Json node_array = obs::Json::array();
  for (const auto& n : nodes) node_array.push_back(n);
  j.set("nodes", std::move(node_array));
  j.set("message", message);
  if (!fix_hint.empty()) j.set("fix_hint", fix_hint);
  return j;
}

void DiagnosticReport::add(Diagnostic diagnostic) {
  if (diagnostic.severity == Severity::kError) ++errors_;
  if (diagnostic.severity == Severity::kWarning) ++warnings_;
  diagnostics_.push_back(std::move(diagnostic));
}

bool DiagnosticReport::has_code(const std::string& code) const {
  return std::any_of(diagnostics_.begin(), diagnostics_.end(),
                     [&](const Diagnostic& d) { return d.code == code; });
}

void DiagnosticReport::suppress(const std::vector<std::string>& codes) {
  if (codes.empty()) return;
  auto suppressed = [&](const Diagnostic& d) {
    return std::find(codes.begin(), codes.end(), d.code) != codes.end();
  };
  diagnostics_.erase(std::remove_if(diagnostics_.begin(), diagnostics_.end(), suppressed),
                     diagnostics_.end());
  errors_ = warnings_ = 0;
  for (const auto& d : diagnostics_) {
    if (d.severity == Severity::kError) ++errors_;
    if (d.severity == Severity::kWarning) ++warnings_;
  }
}

std::string DiagnosticReport::format() const {
  std::string out;
  for (const auto& d : diagnostics_) {
    out += d.format();
    out += "\n";
  }
  out += std::to_string(errors_) + " error(s), " + std::to_string(warnings_) +
         " warning(s)\n";
  return out;
}

obs::Json DiagnosticReport::to_json() const {
  obs::Json j = obs::Json::object();
  j.set("schema", kLintSchema);
  j.set("errors", static_cast<double>(errors_));
  j.set("warnings", static_cast<double>(warnings_));
  obs::Json list = obs::Json::array();
  for (const auto& d : diagnostics_) list.push_back(d.to_json());
  j.set("diagnostics", std::move(list));
  return j;
}

}  // namespace oxmlc::spice::analyze
