#include "spice/analyze/analyzer.hpp"

#include <algorithm>
#include <map>
#include <numeric>
#include <set>

#include "numeric/structure.hpp"
#include "spice/device.hpp"

namespace oxmlc::spice::analyze {
namespace {

// Union-find over node indices with ground mapped to a virtual slot.
class NodeSets {
 public:
  explicit NodeSets(std::size_t node_count) : parent_(node_count + 1) {
    std::iota(parent_.begin(), parent_.end(), 0);
  }

  // kGround (-1) maps to the last slot.
  std::size_t slot(int node) const {
    return node < 0 ? parent_.size() - 1 : static_cast<std::size_t>(node);
  }

  std::size_t find(std::size_t i) {
    while (parent_[i] != i) {
      parent_[i] = parent_[parent_[i]];
      i = parent_[i];
    }
    return i;
  }

  // Returns false when a and b were already connected (i.e. the edge closes a
  // cycle in the united graph).
  bool unite(int a, int b) {
    const std::size_t ra = find(slot(a));
    const std::size_t rb = find(slot(b));
    if (ra == rb) return false;
    parent_[ra] = rb;
    return true;
  }

  bool connected(std::size_t i, int node) { return find(i) == find(slot(node)); }

 private:
  std::vector<std::size_t> parent_;
};

void check_duplicate_names(const Circuit& circuit, DiagnosticReport& report) {
  std::map<std::string, std::size_t> counts;
  for (const auto& device : circuit.devices()) ++counts[device->name()];
  for (const auto& [name, count] : counts) {
    if (count < 2) continue;
    Diagnostic d;
    d.severity = Severity::kError;
    d.code = codes::kDuplicateDevice;
    d.device = name;
    d.message = "device name declared " + std::to_string(count) + " times";
    d.fix_hint = "rename the duplicates; device names key probes and controlled sources";
    report.add(std::move(d));
  }
}

void check_device_parameters(const Circuit& circuit, DiagnosticReport& report) {
  std::vector<Diagnostic> findings;
  for (const auto& device : circuit.devices()) {
    findings.clear();
    device->self_check(findings);
    for (Diagnostic& d : findings) {
      if (d.device.empty()) d.device = device->name();
      if (d.nodes.empty()) {
        for (int n : device->nodes()) d.nodes.push_back(circuit.node_name(n));
      }
      report.add(std::move(d));
    }
  }
}

void check_dangling_terminals(const Circuit& circuit, DiagnosticReport& report) {
  const std::size_t n = circuit.node_count();
  std::vector<std::size_t> attachments(n, 0);
  std::vector<const Device*> only_device(n, nullptr);
  for (const auto& device : circuit.devices()) {
    for (int node : device->nodes()) {
      if (node < 0) continue;
      ++attachments[static_cast<std::size_t>(node)];
      only_device[static_cast<std::size_t>(node)] = device.get();
    }
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (attachments[i] != 1) continue;
    Diagnostic d;
    d.severity = Severity::kWarning;
    d.code = codes::kDanglingTerminal;
    d.device = only_device[i]->name();
    d.nodes = {circuit.node_name(static_cast<int>(i))};
    d.message = "node is attached to a single device terminal";
    d.fix_hint = "a one-off node name is usually a typo; connect the node or drop it";
    report.add(std::move(d));
  }
}

// Floating components (OXA001) and current-source cutsets (OXA003) share the
// connectivity pass: components of the conductance+voltage graph that do not
// reach ground are floating; if a current source injects across the component
// boundary the DC problem is ill-posed, not just weakly anchored.
void check_connectivity(const Circuit& circuit,
                        const std::vector<std::pair<const Device*, StructuralEdge>>& edges,
                        DiagnosticReport& report) {
  const std::size_t n = circuit.node_count();
  NodeSets sets(n);
  for (const auto& entry : edges) {
    const StructuralEdge& edge = entry.second;
    if (edge.kind == EdgeKind::kConductance || edge.kind == EdgeKind::kVoltageSource) {
      sets.unite(edge.a, edge.b);
    }
  }

  // Group non-ground-connected nodes by component root.
  std::map<std::size_t, std::vector<int>> floating;
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t root = sets.find(i);
    if (sets.connected(root, kGround)) continue;
    floating[root].push_back(static_cast<int>(i));
  }

  for (const auto& [root, nodes] : floating) {
    // Does any current source cross the component boundary?
    const Device* injector = nullptr;
    for (const auto& [device, edge] : edges) {
      if (edge.kind != EdgeKind::kCurrentSource) continue;
      const bool a_in = sets.connected(sets.slot(edge.a), nodes.front());
      const bool b_in = sets.connected(sets.slot(edge.b), nodes.front());
      if (a_in != b_in) {
        injector = device;
        break;
      }
    }
    Diagnostic d;
    if (injector != nullptr) {
      d.severity = Severity::kError;
      d.code = codes::kCurrentCutset;
      d.device = injector->name();
      d.message = "current source forces current into a subcircuit with no DC "
                  "return path to ground";
      d.fix_hint = "add a DC path (resistor) to ground or gate the source";
    } else {
      d.severity = Severity::kWarning;
      d.code = codes::kFloatingNode;
      d.message = "no DC path to ground; the operating point is only anchored "
                  "by the solver's gmin shunt";
      d.fix_hint = "add a DC path to ground (e.g. a large resistor) or "
                   "suppress with .nolint OXA001";
    }
    for (int node : nodes) d.nodes.push_back(circuit.node_name(node));
    report.add(std::move(d));
  }
}

void check_voltage_loops(const Circuit& circuit,
                         const std::vector<std::pair<const Device*, StructuralEdge>>& edges,
                         DiagnosticReport& report) {
  const std::size_t n = circuit.node_count();
  NodeSets sets(n);
  for (const auto& [device, edge] : edges) {
    if (edge.kind != EdgeKind::kVoltageSource) continue;
    if (!sets.unite(edge.a, edge.b)) {
      Diagnostic d;
      d.severity = Severity::kError;
      d.code = codes::kVoltageLoop;
      d.device = device->name();
      d.nodes = {circuit.node_name(edge.a), circuit.node_name(edge.b)};
      d.message = "closes a loop of voltage-source-like branches (V/E/H sources, "
                  "DC-shorted inductors); the loop current is indeterminate";
      d.fix_hint = "break the loop with a small series resistance";
      report.add(std::move(d));
    }
  }
}

void check_structural_singularity(Circuit& circuit, double gmin,
                                  DiagnosticReport& report) {
  const std::size_t n = circuit.unknown_count();
  if (n == 0) return;

  // Assemble the Jacobian sparsity pattern exactly as MnaSystem::assemble
  // does at the first Newton iterate: devices stamp at x = 0 in DC mode, then
  // the universal gmin shunt lands on every node diagonal.
  num::TripletMatrix pattern(n);
  std::vector<double> residual(n, 0.0);
  std::vector<double> x(n, 0.0);
  StampContext ctx;
  ctx.mode = AnalysisMode::kDcOperatingPoint;
  ctx.gmin = gmin;
  ctx.x = x;
  Stamper stamper(pattern, residual);
  for (auto& device : circuit.devices()) device->stamp(ctx, stamper);
  for (std::size_t i = 0; i < circuit.node_count(); ++i) pattern.add(i, i, gmin);

  const num::StructuralRankResult rank = num::structural_rank(pattern);
  for (std::size_t row : rank.unmatched_rows) {
    Diagnostic d;
    d.severity = Severity::kError;
    d.code = codes::kStructuralSingular;
    if (row < circuit.node_count()) {
      d.nodes = {circuit.node_name(static_cast<int>(row))};
      d.message = "MNA row of this node admits no pivot for any parameter "
                  "values (structurally singular)";
    } else {
      for (const auto& device : circuit.devices()) {
        const auto branches = device->branches();
        if (std::find(branches.begin(), branches.end(), static_cast<int>(row)) !=
            branches.end()) {
          d.device = device->name();
          for (int node : device->nodes()) d.nodes.push_back(circuit.node_name(node));
          break;
        }
      }
      d.message = "branch equation admits no pivot for any parameter values "
                  "(structurally singular); the branch constrains nothing";
    }
    d.fix_hint = "the device is degenerate as wired (e.g. a source with both "
                 "terminals on the same net); rewire or remove it";
    report.add(std::move(d));
  }
}

}  // namespace

DiagnosticReport analyze_circuit(Circuit& circuit, const AnalyzerOptions& options) {
  circuit.finalize();

  // Collect every device's structural self-description once.
  std::vector<std::pair<const Device*, StructuralEdge>> edges;
  for (const auto& device : circuit.devices()) {
    for (const StructuralEdge& edge : device->dc_edges()) {
      edges.emplace_back(device.get(), edge);
    }
  }

  DiagnosticReport report;
  check_duplicate_names(circuit, report);
  check_device_parameters(circuit, report);
  check_dangling_terminals(circuit, report);
  check_connectivity(circuit, edges, report);
  check_voltage_loops(circuit, edges, report);
  if (options.structural_check) {
    check_structural_singularity(circuit, options.gmin, report);
  }
  report.suppress(options.suppress);
  return report;
}

}  // namespace oxmlc::spice::analyze
