// Bordered-block partition derivation from the circuit's structural graph.
//
// The hierarchical solver (num::BlockSchurLu) needs every unknown labeled
// interior-block or border such that no Jacobian entry couples two distinct
// interior blocks. The coupling structure is over-approximated from the
// device list: every device may stamp any (row, col) pair among its own
// terminals and branch currents, so each device forms a clique over its
// unknowns. Removing a chosen border set from that clique graph leaves
// connected components — those are the interior blocks.
//
// Two entry points:
//  - derive_partition: the caller names the border unknowns (an array builder
//    knows its shared driver/supply/ladder nodes exactly);
//  - auto_partition: greedy highest-degree vertex removal picks the border
//    from the graph alone, falling back to "no useful split" (blocks == 0)
//    rather than a bad partition.
//
// Components containing only branch-current unknowns are merged into the
// border: the MNA gmin shunt lands on node unknowns only, so a branch-only
// block (e.g. the branch current of a voltage source whose terminals are both
// border nodes) has a structurally singular diagonal block.
#pragma once

#include <span>

#include "numeric/schur_lu.hpp"
#include "spice/circuit.hpp"

namespace oxmlc::spice::analyze {

struct PartitionOptions {
  // auto_partition gives up (returns blocks == 0) once this many unknowns
  // have been moved to the border without a useful split appearing.
  std::size_t max_border = 96;
  // Minimum interior block count for a split to be reported as useful.
  std::size_t min_blocks = 2;
};

// Partition with the given unknowns (plus whatever branch-only components
// they strand) as the border. Ground / negative indices are ignored.
num::BlockPartition derive_partition(const Circuit& circuit,
                                     std::span<const int> border_unknowns);

// Automatic border selection from the structural graph. Returns a partition
// with blocks == 0 when no split with >= options.min_blocks interior blocks
// exists within options.max_border border unknowns — callers should then stay
// on the monolithic path.
num::BlockPartition auto_partition(const Circuit& circuit,
                                   const PartitionOptions& options = {});

}  // namespace oxmlc::spice::analyze
