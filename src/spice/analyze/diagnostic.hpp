// Structured diagnostics for the static analyzers.
//
// Every finding — from the netlist parser's unit-suffix lint to the MNA
// structural-singularity pre-check to the MLC configuration lint — is a
// `Diagnostic` with a stable code (OXA0xx for circuit analysis, OXP0xx for
// parse errors, OXC0xx for MLC configuration analysis), the offending
// device/nodes, a human message and a fix hint. Reports render as plain text
// (one line per finding, compiler-style) and as JSON (schema
// `oxmlc.lint.v2`, reusing obs::Json) so CI and editors can consume them.
#pragma once

#include <string>
#include <vector>

#include "obs/json.hpp"
#include "util/schema.hpp"

namespace oxmlc::spice::analyze {

// Lint report JSON schema. v2 = v1 + the OXC0xx configuration-lint code
// namespace and a top-level "domain" key ("circuit" | "mlc") on CLI reports.
inline constexpr const char* kLintSchema = util::kLintSchema;

enum class Severity { kInfo, kWarning, kError };

const char* severity_name(Severity severity);

// Stable diagnostic codes. Codes are append-only: once shipped, a code keeps
// its meaning forever (CI corpora and suppression lists depend on them).
namespace codes {
inline constexpr const char* kFloatingNode = "OXA001";        // no DC path to ground
inline constexpr const char* kVoltageLoop = "OXA002";         // V-source/inductor loop
inline constexpr const char* kCurrentCutset = "OXA003";       // current-source-only node
inline constexpr const char* kDanglingTerminal = "OXA004";    // single-connection node
inline constexpr const char* kNonPositivePassive = "OXA005";  // R/C/L <= 0
inline constexpr const char* kDuplicateDevice = "OXA006";     // duplicate device names
inline constexpr const char* kSuspiciousSuffix = "OXA007";    // unit-suffix smells
inline constexpr const char* kStructuralSingular = "OXA008";  // symbolic zero pivot

// Netlist parse errors (carried by spice::NetlistError, not Diagnostic).
inline constexpr const char* kUnknownCard = "OXP001";       // unrecognized device letter
inline constexpr const char* kUnknownDirective = "OXP002";  // unrecognized .directive
inline constexpr const char* kMalformedCard = "OXP003";     // missing tokens/nodes, arity
inline constexpr const char* kBadValue = "OXP004";          // bad literal / rejected param
inline constexpr const char* kUnknownWaveform = "OXP005";   // unknown waveform or model
inline constexpr const char* kBadReference = "OXP006";      // unresolved device reference

// MLC configuration lint (mlc/analyze/config_lint.hpp): static evaluation of
// a level placement against the drift model's relaxation-widened bands.
inline constexpr const char* kConfigParse = "OXC000";        // malformed .mlc config
inline constexpr const char* kLevelsInverted = "OXC001";     // non-monotone iref/R order
inline constexpr const char* kZeroWidthBand = "OXC002";      // equal adjacent nominals
inline constexpr const char* kBandOverlap = "OXC003";        // relaxation-widened overlap
inline constexpr const char* kLevelUnreachable = "OXC004";   // iref outside window/compliance
inline constexpr const char* kVerifyOverHorizon = "OXC005";  // wait into retention regime
inline constexpr const char* kVerifyUnderHorizon = "OXC006"; // re-sense before relaxation
inline constexpr const char* kLevelCountMismatch = "OXC007"; // levels != 2^bits
}  // namespace codes

struct Diagnostic {
  Severity severity = Severity::kWarning;
  std::string code;                // e.g. "OXA001"
  std::string device;              // offending device name ("" when node-level)
  std::vector<std::string> nodes;  // involved node names
  std::string message;
  std::string fix_hint;

  // "error[OXA002]: loop of voltage sources ... (device VSL, nodes sl, 0) — hint"
  std::string format() const;
  obs::Json to_json() const;
};

// Ordered collection of findings with severity accounting and suppression.
class DiagnosticReport {
 public:
  void add(Diagnostic diagnostic);

  const std::vector<Diagnostic>& diagnostics() const { return diagnostics_; }
  bool empty() const { return diagnostics_.empty(); }
  std::size_t error_count() const { return errors_; }
  std::size_t warning_count() const { return warnings_; }
  bool has_errors() const { return errors_ > 0; }
  bool has_code(const std::string& code) const;

  // Drops every diagnostic whose code appears in `codes` (netlist `.nolint`).
  void suppress(const std::vector<std::string>& codes);

  // One formatted line per diagnostic plus a trailing summary line.
  std::string format() const;

  // {"schema": "oxmlc.lint.v2", "errors": N, "warnings": N, "diagnostics": [..]}
  obs::Json to_json() const;

 private:
  std::vector<Diagnostic> diagnostics_;
  std::size_t errors_ = 0;
  std::size_t warnings_ = 0;
};

}  // namespace oxmlc::spice::analyze
