#include "spice/analyze/partition.hpp"

#include <algorithm>
#include <cstdint>
#include <vector>

#include "util/error.hpp"

namespace oxmlc::spice::analyze {
namespace {

// Unknowns of one device (terminals + branch currents), ground dropped.
std::vector<std::size_t> device_unknowns(const Device& device) {
  std::vector<std::size_t> out;
  out.reserve(device.nodes().size() + device.branches().size());
  for (int n : device.nodes()) {
    if (n >= 0) out.push_back(static_cast<std::size_t>(n));
  }
  for (int b : device.branches()) {
    if (b >= 0) out.push_back(static_cast<std::size_t>(b));
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

struct UnionFind {
  explicit UnionFind(std::size_t n) : parent(n) {
    for (std::size_t i = 0; i < n; ++i) parent[i] = i;
  }
  std::size_t find(std::size_t i) {
    while (parent[i] != i) {
      parent[i] = parent[parent[i]];
      i = parent[i];
    }
    return i;
  }
  void unite(std::size_t a, std::size_t b) {
    a = find(a);
    b = find(b);
    if (a == b) return;
    // Smaller root wins: component representatives stay deterministic.
    if (b < a) std::swap(a, b);
    parent[b] = a;
  }
  std::vector<std::size_t> parent;
};

// Core: components of the device-clique graph restricted to non-border
// unknowns become blocks; branch-only components are folded into the border.
num::BlockPartition partition_from_border(const Circuit& circuit,
                                          const std::vector<char>& is_border) {
  const std::size_t n = circuit.unknown_count();
  const std::size_t node_count = circuit.node_count();

  UnionFind uf(n);
  for (const auto& device : circuit.devices()) {
    const std::vector<std::size_t> unknowns = device_unknowns(*device);
    std::size_t prev = n;  // sentinel
    for (std::size_t u : unknowns) {
      if (is_border[u]) continue;
      if (prev != n) uf.unite(prev, u);
      prev = u;
    }
  }

  // Branch-only components (no node unknown keeps a gmin-shunted diagonal)
  // go to the border; see the header comment.
  std::vector<char> root_has_node(n, 0);
  for (std::size_t i = 0; i < node_count && i < n; ++i) {
    if (!is_border[i]) root_has_node[uf.find(i)] = 1;
  }

  num::BlockPartition partition;
  partition.block_of.assign(n, num::BlockPartition::kBorder);
  std::vector<std::int32_t> block_of_root(n, -1);
  std::int32_t next_block = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (is_border[i]) continue;
    const std::size_t root = uf.find(i);
    if (!root_has_node[root]) continue;  // branch-only: stays border
    if (block_of_root[root] < 0) block_of_root[root] = next_block++;
    partition.block_of[i] = block_of_root[root];
  }
  partition.blocks = static_cast<std::size_t>(next_block);
  if (partition.blocks == 0) {
    // Everything ended up on the border; BlockSchurLu still needs >= 1 block.
    partition.blocks = 1;
  }
  return partition;
}

}  // namespace

num::BlockPartition derive_partition(const Circuit& circuit,
                                     std::span<const int> border_unknowns) {
  OXMLC_CHECK(circuit.finalized(), "derive_partition: circuit not finalized");
  const std::size_t n = circuit.unknown_count();
  std::vector<char> is_border(n, 0);
  for (int u : border_unknowns) {
    if (u < 0) continue;
    OXMLC_CHECK(static_cast<std::size_t>(u) < n,
                "derive_partition: border unknown out of range");
    is_border[static_cast<std::size_t>(u)] = 1;
  }
  return partition_from_border(circuit, is_border);
}

num::BlockPartition auto_partition(const Circuit& circuit,
                                   const PartitionOptions& options) {
  OXMLC_CHECK(circuit.finalized(), "auto_partition: circuit not finalized");
  const std::size_t n = circuit.unknown_count();
  std::vector<char> is_border(n, 0);

  // Static adjacency (sorted unique neighbor lists) from the device cliques.
  std::vector<std::vector<std::size_t>> adj(n);
  for (const auto& device : circuit.devices()) {
    const std::vector<std::size_t> unknowns = device_unknowns(*device);
    for (std::size_t a : unknowns) {
      for (std::size_t b : unknowns) {
        if (a != b) adj[a].push_back(b);
      }
    }
  }
  for (auto& neighbors : adj) {
    std::sort(neighbors.begin(), neighbors.end());
    neighbors.erase(std::unique(neighbors.begin(), neighbors.end()),
                    neighbors.end());
  }

  for (std::size_t moved = 0; moved <= options.max_border && moved <= n; ++moved) {
    num::BlockPartition candidate = partition_from_border(circuit, is_border);
    // Count non-trivial blocks only: singleton blocks that the removal
    // stranded are not a useful decomposition on their own.
    std::vector<std::size_t> sizes(candidate.blocks, 0);
    for (std::int32_t b : candidate.block_of) {
      if (b >= 0) ++sizes[static_cast<std::size_t>(b)];
    }
    std::size_t useful = 0;
    for (std::size_t s : sizes) {
      if (s >= 2) ++useful;
    }
    if (useful >= options.min_blocks && candidate.blocks >= options.min_blocks) {
      return candidate;
    }

    // Move the highest-degree remaining unknown (degree among non-border
    // neighbors, lowest index on ties — deterministic) to the border.
    std::size_t best = n;
    std::size_t best_degree = 0;
    for (std::size_t i = 0; i < n; ++i) {
      if (is_border[i]) continue;
      std::size_t degree = 0;
      for (std::size_t nb : adj[i]) {
        if (!is_border[nb]) ++degree;
      }
      if (degree > best_degree) {
        best_degree = degree;
        best = i;
      }
    }
    if (best == n) break;  // nothing left to move
    is_border[best] = 1;
  }

  num::BlockPartition none;
  none.blocks = 0;  // caller: stay monolithic
  return none;
}

}  // namespace oxmlc::spice::analyze
