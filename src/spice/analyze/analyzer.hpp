// Circuit static analyzer: structural verification before any solve.
//
// Runs over a finalized Circuit and reports topology and parameter problems
// that would otherwise surface as opaque singular-LU throws (or silently wrong
// answers) deep inside Newton:
//
//   OXA001  floating node — no DC path (conductance/voltage edge) to ground
//   OXA002  loop of voltage-source-like branches (V/E/H, DC-shorted inductors)
//   OXA003  current-source cutset — current forced into a floating subcircuit
//   OXA004  dangling device terminal — a node with a single attachment
//   OXA005  implausible passive value (likely unit typo)
//   OXA006  duplicate device names
//   OXA007  suspicious unit suffix in a netlist literal (emitted by the parser)
//   OXA008  structurally singular MNA pattern (symbolic zero pivot)
//
// Pass order is fixed (cheap graph passes first, then the symbolic matrix
// check) and documented in DESIGN.md; codes are stable. Checks can be
// suppressed per netlist with the `.nolint CODE...` directive or per call via
// AnalyzerOptions::suppress.
#pragma once

#include <string>
#include <vector>

#include "spice/analyze/diagnostic.hpp"
#include "spice/circuit.hpp"

namespace oxmlc::spice::analyze {

struct AnalyzerOptions {
  // Diagnostic codes to drop from the report (e.g. {"OXA001"}).
  std::vector<std::string> suppress;
  // The OXA008 symbolic-pivot check assembles the Jacobian pattern once; skip
  // it for huge circuits where the graph passes are enough.
  bool structural_check = true;
  // Mirrors MnaSystem::assemble's universal node-to-ground shunt, which keeps
  // otherwise-floating node rows structurally non-singular.
  double gmin = 1e-12;
};

// Analyzes the circuit (finalizing it if needed) and returns all findings.
// Does not throw on findings; callers decide how to react (the DC/transient
// entry points fail fast on error-severity findings, the CLI prints them).
DiagnosticReport analyze_circuit(Circuit& circuit, const AnalyzerOptions& options = {});

}  // namespace oxmlc::spice::analyze
