#include "spice/ac.hpp"

#include <cmath>

#include "numeric/complex_lu.hpp"
#include "spice/dc.hpp"
#include "util/error.hpp"

namespace oxmlc::spice {

double AcResult::magnitude(std::size_t point, int unknown_index) const {
  OXMLC_CHECK(point < solutions.size(), "AC point out of range");
  OXMLC_CHECK(unknown_index >= 0, "cannot probe ground in AC results");
  return std::abs(solutions[point][static_cast<std::size_t>(unknown_index)]);
}

double AcResult::magnitude_db(std::size_t point, int unknown_index) const {
  return 20.0 * std::log10(std::max(magnitude(point, unknown_index), 1e-300));
}

double AcResult::phase_deg(std::size_t point, int unknown_index) const {
  OXMLC_CHECK(point < solutions.size(), "AC point out of range");
  OXMLC_CHECK(unknown_index >= 0, "cannot probe ground in AC results");
  return std::arg(solutions[point][static_cast<std::size_t>(unknown_index)]) * 180.0 /
         phys::kPi;
}

std::size_t AcResult::corner_index(int unknown_index) const {
  if (solutions.empty()) return 0;
  const double reference = magnitude(0, unknown_index);
  for (std::size_t k = 0; k < solutions.size(); ++k) {
    if (magnitude(k, unknown_index) < reference / std::sqrt(2.0)) return k;
  }
  return solutions.size();
}

AcResult run_ac(MnaSystem& system, const AcOptions& options) {
  OXMLC_CHECK(options.f_stop > options.f_start && options.f_start > 0.0,
              "run_ac: need 0 < f_start < f_stop");
  AcResult result;

  // --- operating point ---
  const DcResult dc = solve_dc(system, options.dc);
  if (!dc.converged) return result;
  result.dc_operating_point = dc.solution;

  const std::size_t n = system.dimension();
  Circuit& circuit = system.circuit();
  StampContext& ctx = system.context();
  ctx.mode = AnalysisMode::kDcOperatingPoint;
  ctx.time = 0.0;
  ctx.dt = 0.0;
  ctx.source_scale = 1.0;

  // --- G: the exact linearization at the OP (assemble's Jacobian) ---
  num::TripletMatrix g(n);
  std::vector<double> residual(n, 0.0);
  system.assemble(dc.solution, g, residual);

  // --- B: reactive stamps ---
  num::TripletMatrix b(n);
  ctx.x = dc.solution;
  for (const auto& device : circuit.devices()) {
    device->stamp_reactive(ctx, b);
  }

  // --- excitation vector ---
  std::vector<std::complex<double>> rhs(n, {0.0, 0.0});
  for (const auto& device : circuit.devices()) {
    device->stamp_ac_source(rhs);
  }

  // --- frequency grid (log spaced) ---
  const double decades = std::log10(options.f_stop / options.f_start);
  const auto points = static_cast<std::size_t>(
      std::ceil(decades * static_cast<double>(options.points_per_decade))) + 1;
  for (std::size_t k = 0; k < points; ++k) {
    const double frac = static_cast<double>(k) / static_cast<double>(points - 1);
    result.frequencies.push_back(options.f_start *
                                 std::pow(10.0, frac * decades));
  }

  // --- sweep ---
  std::vector<std::complex<double>> x(n);
  for (double f : result.frequencies) {
    const double omega = 2.0 * phys::kPi * f;
    num::ComplexDenseMatrix a(n, n);
    for (const auto& entry : g.entries()) {
      a.add(entry.row, entry.col, {entry.value, 0.0});
    }
    for (const auto& entry : b.entries()) {
      a.add(entry.row, entry.col, {0.0, omega * entry.value});
    }
    num::ComplexLu lu;
    lu.factorize(a);
    lu.solve(rhs, x);
    result.solutions.push_back(x);
  }
  result.converged = true;
  return result;
}

}  // namespace oxmlc::spice
