#include "spice/dc.hpp"

#include <cmath>

#include "obs/registry.hpp"
#include "util/error.hpp"
#include "util/logging.hpp"

namespace oxmlc::spice {
namespace {

num::NewtonResult attempt(MnaSystem& system, std::vector<double>& x,
                          const num::NewtonOptions& newton) {
  try {
    return num::solve_newton(system, x, newton, system.workspace().newton);
  } catch (const num::SingularMatrixError& error) {
    // Translate the bare pivot column into circuit vocabulary before the
    // exception escapes to callers that never saw the matrix.
    system.rethrow_singular(error, "dc");
  }
}

struct DcMetrics {
  obs::Counter& solves = obs::registry().counter("dc.solves");
  obs::Counter& direct = obs::registry().counter("dc.strategy.direct");
  obs::Counter& gmin_stepping = obs::registry().counter("dc.strategy.gmin_stepping");
  obs::Counter& source_stepping =
      obs::registry().counter("dc.strategy.source_stepping");
  obs::Counter& failures = obs::registry().counter("dc.failures");
  obs::Timer& solve_time = obs::registry().timer("dc.solve_time");

  static DcMetrics& get() {
    static DcMetrics metrics;
    return metrics;
  }
};

}  // namespace

DcResult solve_dc(MnaSystem& system, const DcOptions& options,
                  const std::vector<double>* initial_guess) {
  DcMetrics& metrics = DcMetrics::get();
  metrics.solves.add();
  obs::ScopedTimer solve_timer(metrics.solve_time);

  const std::size_t n = system.dimension();
  DcResult result;
  result.solution.assign(n, 0.0);
  if (initial_guess) {
    OXMLC_CHECK(initial_guess->size() == n, "solve_dc: bad initial guess size");
    result.solution = *initial_guess;
  }

  StampContext& ctx = system.context();
  ctx.mode = AnalysisMode::kDcOperatingPoint;
  ctx.time = 0.0;
  ctx.dt = 0.0;
  ctx.source_scale = 1.0;
  ctx.gmin = options.gmin;

  // Fail fast on broken topology (cached after the first call, so sweeps and
  // Monte-Carlo repetitions pay the analysis cost once).
  if (options.precheck) system.precheck();

  // Strategy 1: direct solve.
  auto newton_result = attempt(system, result.solution, options.newton);
  result.newton_iterations += newton_result.iterations;
  if (newton_result.converged) {
    result.converged = true;
    result.strategy = "direct";
    metrics.direct.add();
    return result;
  }

  // Strategy 2: gmin stepping — solve a heavily shunted (easy) circuit first,
  // then tighten the shunt geometrically, reusing each solution as the seed.
  {
    std::vector<double> x(n, 0.0);
    bool ladder_ok = true;
    for (double gmin = options.gmin_start; gmin >= options.gmin * 0.999;
         gmin /= options.gmin_ratio) {
      ctx.gmin = gmin;
      newton_result = attempt(system, x, options.newton);
      result.newton_iterations += newton_result.iterations;
      if (!newton_result.converged) {
        ladder_ok = false;
        break;
      }
      if (gmin / options.gmin_ratio < options.gmin && gmin > options.gmin) {
        // Final rung: land exactly on the target gmin.
        ctx.gmin = options.gmin;
        newton_result = attempt(system, x, options.newton);
        result.newton_iterations += newton_result.iterations;
        ladder_ok = newton_result.converged;
        break;
      }
    }
    ctx.gmin = options.gmin;
    if (ladder_ok && newton_result.converged) {
      result.converged = true;
      result.strategy = "gmin-stepping";
      metrics.gmin_stepping.add();
      result.solution = std::move(x);
      return result;
    }
  }

  // Strategy 3: source stepping — ramp all independent sources from zero.
  {
    std::vector<double> x(n, 0.0);
    bool ok = true;
    for (std::size_t step = 1; step <= options.source_steps; ++step) {
      ctx.source_scale =
          static_cast<double>(step) / static_cast<double>(options.source_steps);
      newton_result = attempt(system, x, options.newton);
      result.newton_iterations += newton_result.iterations;
      if (!newton_result.converged) {
        ok = false;
        break;
      }
    }
    ctx.source_scale = 1.0;
    if (ok) {
      result.converged = true;
      result.strategy = "source-stepping";
      metrics.source_stepping.add();
      result.solution = std::move(x);
      return result;
    }
  }

  OXMLC_WARN << "DC operating point failed to converge (residual "
             << newton_result.final_residual_norm << ")";
  result.converged = false;
  result.strategy = "failed";
  metrics.failures.add();
  return result;
}

std::vector<SweepPoint> dc_sweep(MnaSystem& system,
                                 const std::function<void(double)>& set_parameter,
                                 const std::vector<double>& values, const DcOptions& options) {
  std::vector<SweepPoint> points;
  points.reserve(values.size());
  const std::vector<double>* seed = nullptr;
  for (double value : values) {
    set_parameter(value);
    SweepPoint point;
    point.parameter = value;
    point.result = solve_dc(system, options, seed);
    if (point.result.converged) seed = &point.result.solution;
    points.push_back(std::move(point));
    if (seed) seed = &points.back().result.solution;
  }
  return points;
}

}  // namespace oxmlc::spice
