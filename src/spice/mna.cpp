#include "spice/mna.hpp"

#include <algorithm>

#include "numeric/schur_lu.hpp"
#include "util/error.hpp"
#include "util/logging.hpp"

namespace oxmlc::spice {

void MnaSystem::set_partition(const num::BlockPartition& partition,
                              const num::SchurOptions& options) {
  OXMLC_CHECK(partition.block_of.size() == dimension(),
              "MnaSystem::set_partition: partition size != unknown count");
  workspace_.newton.solver.set_partition(partition, options);
}

void MnaSystem::clear_partition() { workspace_.newton.solver.clear_partition(); }

void MnaSystem::assemble(std::span<const double> x, num::TripletMatrix& jacobian,
                         std::span<double> residual) {
  std::fill(residual.begin(), residual.end(), 0.0);
  jacobian.resize(dimension());

  context_.x = x;
  Stamper stamper(jacobian, residual);
  for (auto& device : circuit_.devices()) {
    device->stamp(context_, stamper);
  }

  // Universal gmin shunt from every node to ground: keeps the matrix
  // non-singular when a node is only driven through nonlinear devices that are
  // currently cut off (e.g. a MOSFET gate net before its driver turns on).
  const double gmin = context_.gmin;
  const std::size_t nodes = circuit_.node_count();
  for (std::size_t i = 0; i < nodes; ++i) {
    jacobian.add(i, i, gmin);
    residual[i] += gmin * x[i];
  }
}

const analyze::DiagnosticReport& MnaSystem::precheck() {
  if (!prechecked_) {
    prechecked_ = true;
    analyzer_options_.gmin = context_.gmin > 0.0 ? context_.gmin : analyzer_options_.gmin;
    precheck_report_ = analyze::analyze_circuit(circuit_, analyzer_options_);
    for (const analyze::Diagnostic& d : precheck_report_.diagnostics()) {
      if (d.severity == analyze::Severity::kWarning) {
        OXMLC_WARN << d.format();
      }
    }
  }
  if (precheck_report_.has_errors()) {
    throw InvalidArgumentError("circuit failed static analysis:\n" +
                               precheck_report_.format());
  }
  return precheck_report_;
}

std::string MnaSystem::describe_unknown(std::size_t idx) const {
  if (idx < circuit_.node_count()) {
    const int node = static_cast<int>(idx);
    std::string out = "node '" + circuit_.node_name(node) + "'";
    std::string attached;
    for (const auto& device : circuit_.devices()) {
      const auto& nodes = device->nodes();
      if (std::find(nodes.begin(), nodes.end(), node) == nodes.end()) continue;
      if (!attached.empty()) attached += ", ";
      attached += device->name();
    }
    if (!attached.empty()) out += " (devices " + attached + ")";
    return out;
  }
  for (const auto& device : circuit_.devices()) {
    const auto branches = device->branches();
    if (std::find(branches.begin(), branches.end(), static_cast<int>(idx)) !=
        branches.end()) {
      return "branch current of '" + device->name() + "'";
    }
  }
  return "unknown #" + std::to_string(idx);
}

void MnaSystem::rethrow_singular(const num::SingularMatrixError& error,
                                 const std::string& analysis) const {
  throw ConvergenceError(analysis + ": MNA matrix is numerically singular at " +
                         describe_unknown(error.column()) +
                         " — check for degenerate device wiring or "
                         "cancelling stamps (" + error.what() + ")");
}

}  // namespace oxmlc::spice
