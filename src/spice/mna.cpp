#include "spice/mna.hpp"

#include <algorithm>

namespace oxmlc::spice {

void MnaSystem::assemble(std::span<const double> x, num::TripletMatrix& jacobian,
                         std::span<double> residual) {
  std::fill(residual.begin(), residual.end(), 0.0);
  jacobian.resize(dimension());

  context_.x = x;
  Stamper stamper(jacobian, residual);
  for (auto& device : circuit_.devices()) {
    device->stamp(context_, stamper);
  }

  // Universal gmin shunt from every node to ground: keeps the matrix
  // non-singular when a node is only driven through nonlinear devices that are
  // currently cut off (e.g. a MOSFET gate net before its driver turns on).
  const double gmin = context_.gmin;
  const std::size_t nodes = circuit_.node_count();
  for (std::size_t i = 0; i < nodes; ++i) {
    jacobian.add(i, i, gmin);
    residual[i] += gmin * x[i];
  }
}

}  // namespace oxmlc::spice
