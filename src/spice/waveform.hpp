// Time-domain stimulus waveforms for independent sources, mirroring the SPICE
// DC / PULSE / PWL / SIN source specifications.
//
// `StoppablePulse` is the oxmlc-specific addition: the RESET write-termination
// control logic "triggers a stop pulse to the SL driver" (paper §3.2), which we
// model as a pulse source whose falling edge can be commanded at runtime by a
// transient event callback.
#pragma once

#include <memory>
#include <vector>

namespace oxmlc::spice {

// Value as a function of time. Implementations must be deterministic and
// side-effect free except for the explicit command API on StoppablePulse.
class Waveform {
 public:
  virtual ~Waveform() = default;
  virtual double value(double t) const = 0;

  // Latest time < horizon at which the waveform has a corner/breakpoint, used
  // by the transient engine to land steps exactly on edges. Returns a sorted
  // list of breakpoints within [0, horizon].
  virtual std::vector<double> breakpoints(double horizon) const {
    (void)horizon;
    return {};
  }
};

class DcWaveform final : public Waveform {
 public:
  explicit DcWaveform(double value) : value_(value) {}
  double value(double) const override { return value_; }

 private:
  double value_;
};

// SPICE PULSE(v1 v2 td tr tf pw per). A period of 0 means single-shot.
struct PulseSpec {
  double v1 = 0.0;      // initial value
  double v2 = 0.0;      // pulsed value
  double delay = 0.0;   // td
  double rise = 1e-9;   // tr
  double fall = 1e-9;   // tf
  double width = 1e-6;  // pw
  double period = 0.0;  // per (0 = non-repeating)
};

class PulseWaveform final : public Waveform {
 public:
  explicit PulseWaveform(const PulseSpec& spec);
  double value(double t) const override;
  std::vector<double> breakpoints(double horizon) const override;

  const PulseSpec& spec() const { return spec_; }

 private:
  PulseSpec spec_;
};

// Piecewise-linear waveform from sorted (time, value) points; clamps at ends.
class PwlWaveform final : public Waveform {
 public:
  explicit PwlWaveform(std::vector<std::pair<double, double>> points);
  double value(double t) const override;
  std::vector<double> breakpoints(double horizon) const override;

 private:
  std::vector<std::pair<double, double>> points_;
};

class SinWaveform final : public Waveform {
 public:
  SinWaveform(double offset, double amplitude, double frequency, double delay = 0.0,
              double damping = 0.0);
  double value(double t) const override;

 private:
  double offset_, amplitude_, frequency_, delay_, damping_;
};

// A pulse whose falling edge is commanded at runtime: after `stop(t_stop)` is
// called the output ramps from its current value to `v1` over `fall` seconds.
// Without a stop command it behaves exactly like the underlying pulse (the
// "standard RST pulse" of Fig. 10); with one it is the terminated pulse.
class StoppablePulse final : public Waveform {
 public:
  explicit StoppablePulse(const PulseSpec& spec);

  double value(double t) const override;
  std::vector<double> breakpoints(double horizon) const override;

  // Commands the falling edge at time t (idempotent; only the first wins).
  void stop(double t);
  bool stopped() const { return stop_time_ >= 0.0; }
  double stop_time() const { return stop_time_; }

  // Clears the stop command (for reusing one circuit across trials).
  void reset_command();

 private:
  PulseSpec spec_;
  double stop_time_ = -1.0;
  double value_at_stop_ = 0.0;
};

}  // namespace oxmlc::spice
