// Device interface for the MNA engine.
//
// oxmlc uses a residual formulation: each device contributes its terminal
// currents to the KCL residual F(x) and its small-signal linearization to the
// Jacobian J(x). Newton then solves J dx = -F. Linear devices contribute
// constants; nonlinear devices (MOSFET, diode, OxRAM) re-linearize each call.
//
// Unknown vector layout: x = [node voltages..., branch currents...]. Ground is
// index -1 and is never part of x; the Stamper silently drops ground rows and
// columns, so device code never special-cases it.
#pragma once

#include <complex>
#include <limits>
#include <span>
#include <string>
#include <vector>

#include "numeric/sparse_matrix.hpp"

namespace oxmlc::spice {

namespace analyze {
struct Diagnostic;
}  // namespace analyze

inline constexpr int kGround = -1;

// DC-coupling classification of a terminal pair, used by the static analyzer
// (spice/analyze) to reason about the circuit graph without dynamic_casts:
// every device self-describes how it couples its terminals at DC.
enum class EdgeKind {
  kConductance,    // finite DC conductance path (resistor, diode, channel, cell)
  kVoltageSource,  // ideal voltage constraint (V/E/H sources, DC-shorted inductor)
  kCurrentSource,  // forced current independent of the node voltages (I/G/F)
  kCapacitive,     // open at DC
};

struct StructuralEdge {
  int a = kGround;
  int b = kGround;
  EdgeKind kind = EdgeKind::kConductance;
};

enum class AnalysisMode { kDcOperatingPoint, kTransient };
enum class IntegrationMethod { kBackwardEuler, kTrapezoidal };

// Everything a device needs to know about the current solver step.
struct StampContext {
  AnalysisMode mode = AnalysisMode::kDcOperatingPoint;
  double time = 0.0;           // end-of-step time (transient) or 0 (DC)
  double dt = 0.0;             // current step size (transient only)
  IntegrationMethod method = IntegrationMethod::kBackwardEuler;
  double gmin = 1e-12;         // convergence shunt applied by nonlinear devices
  double source_scale = 1.0;   // source-stepping homotopy factor (DC only)
  std::span<const double> x;   // current Newton iterate
};

// Ground-aware stamping facade over the Jacobian triplets and residual.
class Stamper {
 public:
  Stamper(num::TripletMatrix& jacobian, std::span<double> residual)
      : jacobian_(jacobian), residual_(residual) {}

  // dF_row/dx_col += value
  void jacobian(int row, int col, double value) {
    if (row < 0 || col < 0) return;
    jacobian_.add(static_cast<std::size_t>(row), static_cast<std::size_t>(col), value);
  }

  // F_row += value (current leaving `row`'s node, or branch equation value)
  void residual(int row, double value) {
    if (row < 0) return;
    residual_[static_cast<std::size_t>(row)] += value;
  }

  // Linear conductance g between nodes a and b: full 4-entry stamp plus the
  // corresponding residual contribution g*(Va-Vb).
  void conductance(int a, int b, double g, double va, double vb) {
    const double i = g * (va - vb);
    residual(a, i);
    residual(b, -i);
    jacobian(a, a, g);
    jacobian(a, b, -g);
    jacobian(b, a, -g);
    jacobian(b, b, g);
  }

 private:
  num::TripletMatrix& jacobian_;
  std::span<double> residual_;
};

class Device {
 public:
  explicit Device(std::string name) : name_(std::move(name)) {}
  virtual ~Device() = default;
  Device(const Device&) = delete;
  Device& operator=(const Device&) = delete;

  const std::string& name() const { return name_; }

  // Number of extra unknowns (branch currents) this device introduces.
  virtual std::size_t branch_count() const { return 0; }

  // Adds this device's contribution at iterate ctx.x.
  virtual void stamp(const StampContext& ctx, Stamper& stamper) = 0;

  // Called once after the DC operating point with the converged solution so
  // devices with memory can initialize their history (capacitor voltage, ...).
  virtual void init_state(const StampContext& ctx) { (void)ctx; }

  // Called after each *accepted* transient step with the converged solution.
  virtual void commit_step(const StampContext& ctx) { (void)ctx; }

  // Largest next step the device tolerates at the committed state; the
  // transient engine takes the minimum over devices. Default: unconstrained.
  virtual double recommend_dt(const StampContext& ctx) const {
    (void)ctx;
    return std::numeric_limits<double>::infinity();
  }

  // Waveform corner times in [0, horizon] the transient engine should land
  // steps on (sources forward their waveform's breakpoints).
  virtual std::vector<double> breakpoints(double horizon) const {
    (void)horizon;
    return {};
  }

  // --- AC (small-signal) analysis hooks ---
  // Reactive stamps: the AC system is A(w) = G(op) + j*w*B, where G is the
  // Newton Jacobian at the operating point (assemble() provides it) and B
  // collects charge/flux derivatives: capacitors stamp +/-C on their node
  // pairs, inductors stamp -L on their branch diagonal. Default: none.
  virtual void stamp_reactive(const StampContext& ctx, num::TripletMatrix& b) const {
    (void)ctx;
    (void)b;
  }

  // AC excitation: phasor contributions to the complex right-hand side at the
  // device's own rows (independent sources with an AC specification).
  virtual void stamp_ac_source(std::span<std::complex<double>> rhs) const { (void)rhs; }

  // --- static-analysis hooks (spice/analyze) ---
  // DC-coupling edges between this device's terminals. The default declares a
  // conductive path between every terminal pair, which is correct for
  // intrinsically conductive two-terminal devices (resistor, diode, OxRAM);
  // sources, reactive devices and field-effect devices override it.
  virtual std::vector<StructuralEdge> dc_edges() const {
    std::vector<StructuralEdge> edges;
    for (std::size_t i = 0; i < nodes_.size(); ++i) {
      for (std::size_t j = i + 1; j < nodes_.size(); ++j) {
        edges.push_back({nodes_[i], nodes_[j], EdgeKind::kConductance});
      }
    }
    return edges;
  }

  // Parameter-level lint: devices append findings (severity/code/message set;
  // the analyzer fills in the device name and terminal node names). Default:
  // nothing to report.
  virtual void self_check(std::vector<analyze::Diagnostic>& out) const { (void)out; }

  std::span<const int> nodes() const { return nodes_; }
  std::span<const int> branches() const { return branches_; }

  // Called by Circuit::finalize() to hand out branch unknown indices.
  void assign_branches(std::span<const int> branch_indices) {
    branches_.assign(branch_indices.begin(), branch_indices.end());
  }

 protected:
  // Voltage of unknown index n at iterate x (0 for ground).
  static double v(const StampContext& ctx, int n) {
    return n < 0 ? 0.0 : ctx.x[static_cast<std::size_t>(n)];
  }

  std::string name_;
  std::vector<int> nodes_;      // resolved unknown indices of terminals
  std::vector<int> branches_;   // resolved unknown indices of branch currents
};

}  // namespace oxmlc::spice
