// Transient analysis with adaptive stepping, source breakpoints, and event
// detection/callbacks.
//
// Events are the mechanism behind write termination in full-circuit mode: a
// monitor watches the comparator output voltage; when it crosses the logic
// threshold the callback commands the SL driver's StoppablePulse to ramp down
// — exactly the control-logic behaviour of paper §3.2 / Fig. 7b.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "numeric/newton.hpp"
#include "spice/mna.hpp"

namespace oxmlc::spice {

// Scalar observable on the solution, e.g. a node voltage or device current.
struct Probe {
  std::string name;
  std::function<double(double t, std::span<const double> x)> evaluate;
};

enum class EventDirection { kFalling, kRising, kAny };

struct TransientEvent {
  std::string name;
  // Monitored quantity g(t, x); the event fires on a zero/threshold crossing
  // of g in the configured direction.
  std::function<double(double t, std::span<const double> x)> value;
  double threshold = 0.0;
  EventDirection direction = EventDirection::kFalling;
  // Called once the crossing has been localized to within `resolution`.
  std::function<void(double t, std::span<const double> x)> on_fire;
  double resolution = 1e-9;
  bool one_shot = true;
};

struct TransientOptions {
  double t_stop = 1e-6;
  double dt_initial = 1e-10;
  double dt_min = 1e-14;
  double dt_max = 1e-8;
  double dt_growth = 1.5;  // growth factor after an easy step
  IntegrationMethod method = IntegrationMethod::kBackwardEuler;
  double gmin = 1e-12;
  num::NewtonOptions newton;
  bool store_solutions = false;  // keep full x at every step (memory heavy)
  // Early-stop predicate, checked after each accepted step (events already
  // fired). Returning true ends the run with completed = true — used by
  // terminated writes whose tail carries no information once every cell has
  // been cut off.
  std::function<bool(double t)> stop_when;
};

struct FiredEvent {
  std::string name;
  double time = 0.0;
};

struct TransientResult {
  bool completed = false;        // reached t_stop (or stopped by request)
  std::vector<double> times;     // accepted step times (starts at 0)
  // probe_values[p][k] = probe p at times[k]
  std::vector<std::vector<double>> probe_values;
  std::vector<std::vector<double>> solutions;  // only if store_solutions
  std::vector<FiredEvent> fired_events;
  std::size_t steps_accepted = 0;
  std::size_t steps_rejected = 0;
  std::size_t newton_iterations = 0;

  // Returns the recorded series of the probe with the given name.
  const std::vector<double>& probe(const std::string& name,
                                   const std::vector<Probe>& probes) const;

  // Trapezoidal integral of probe series `values` against `times`.
  static double integrate(const std::vector<double>& times,
                          const std::vector<double>& values);
};

// Runs DC at t=0 (devices see their waveform value at time zero), initializes
// device history, then time-steps to options.t_stop. Probes are sampled at
// every accepted step. Throws ConvergenceError if the DC point or a transient
// step cannot be solved even at dt_min.
TransientResult run_transient(MnaSystem& system, const TransientOptions& options,
                              const std::vector<Probe>& probes = {},
                              std::vector<TransientEvent> events = {});

}  // namespace oxmlc::spice
