// SPICE-style netlist text parser.
//
// Lets testbenches and users describe circuits in the familiar card format
// instead of C++ calls:
//
//   * terminated RST testbench
//   .param vdd=3.3 rbl={2*256}
//   VDD vdd 0 DC {vdd}
//   VSL sl 0 PULSE(0 1.6 0 10n 10n 3.5u)
//   RBL bl term {rbl}
//   CBL bl 0 1p
//   M1 sl wl be 0 NMOS W=0.8u L=0.5u
//   XCELL bl be OXRAM GAP=0.25n
//   .end
//
// Supported cards (first letter selects the device, SPICE convention):
//   R / C / L                         two-terminal passives
//   V / I                             sources: DC <v> | <v> | PULSE(...) |
//                                     PWL(t1 v1 t2 v2 ...) | SIN(off amp freq)
//   E / G                             VCVS / VCCS: out+ out- in+ in- gain
//   D                                 diode: anode cathode [IS=..] [N=..]
//   M                                 MOSFET: d g s b NMOS|PMOS W=.. L=..
//                                     [VT0=..] [KP=..] [LAMBDA=..]
//   S                                 switch: a b c+ c- [VT=..] [RON=..]
//                                     [ROFF=..]
//   X<name> te be OXRAM               OxRAM cell: [GAP=..] [VIRGIN=0|1]
// Directives: .param NAME=VALUE..., .end, * / ; comments, + continuations.
//
// Values accept SI suffixes (f p n u m k meg g t) and {expressions} over
// numbers and .param names with + - * / and parentheses.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "spice/circuit.hpp"

namespace oxmlc::spice {

struct ParsedNetlist {
  Circuit circuit;
  std::string title;                         // first line when it is not a card
  std::map<std::string, double> parameters;  // final .param table
  std::vector<std::string> device_names;     // in card order
};

// Parses the netlist text and builds the circuit (not yet finalized, so
// callers may add probes/devices programmatically before analysis).
// Throws InvalidArgumentError with a line-numbered message on malformed input.
ParsedNetlist parse_netlist(const std::string& text);

// Parses one numeric value with SI suffix ("10k", "1p", "2.5meg", "1e-9") or
// a brace expression ("{2*vdd+1k}") against the given parameter table.
double parse_value(const std::string& token,
                   const std::map<std::string, double>& parameters = {});

}  // namespace oxmlc::spice
