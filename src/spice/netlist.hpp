// SPICE-style netlist text parser.
//
// Lets testbenches and users describe circuits in the familiar card format
// instead of C++ calls:
//
//   * terminated RST testbench
//   .param vdd=3.3 rbl={2*256}
//   VDD vdd 0 DC {vdd}
//   VSL sl 0 PULSE(0 1.6 0 10n 10n 3.5u)
//   RBL bl term {rbl}
//   CBL bl 0 1p
//   M1 sl wl be 0 NMOS W=0.8u L=0.5u
//   XCELL bl be OXRAM GAP=0.25n
//   .end
//
// Supported cards (first letter selects the device, SPICE convention):
//   R / C / L                         two-terminal passives
//   V / I                             sources: DC <v> | <v> | PULSE(...) |
//                                     PWL(t1 v1 t2 v2 ...) | SIN(off amp freq)
//   E / G                             VCVS / VCCS: out+ out- in+ in- gain
//   D                                 diode: anode cathode [IS=..] [N=..]
//   M                                 MOSFET: d g s b NMOS|PMOS W=.. L=..
//                                     [VT0=..] [KP=..] [LAMBDA=..]
//   S                                 switch: a b c+ c- [VT=..] [RON=..]
//                                     [ROFF=..]
//   X<name> te be OXRAM               OxRAM cell: [GAP=..] [VIRGIN=0|1]
// Directives: .param NAME=VALUE..., .nolint CODE..., .end, * / ; comments,
// + continuations.
//
// Values accept SI suffixes (f p n u m k meg g t) and {expressions} over
// numbers and .param names with + - * / and parentheses.
#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "spice/analyze/diagnostic.hpp"
#include "spice/circuit.hpp"
#include "util/error.hpp"

namespace oxmlc::spice {

// Structured parse failure: carries the 1-based netlist line and a stable
// OXP0xx code alongside the human message (which stays line-prefixed, so
// existing catch-and-print callers lose nothing).
class NetlistError : public InvalidArgumentError {
 public:
  NetlistError(std::size_t line, std::string code, const std::string& message)
      : InvalidArgumentError("netlist line " + std::to_string(line) + " [" + code +
                             "]: " + message),
        line_(line),
        code_(std::move(code)) {}

  std::size_t line() const { return line_; }
  const std::string& code() const { return code_; }

 private:
  std::size_t line_;
  std::string code_;
};

struct ParsedNetlist {
  Circuit circuit;
  std::string title;                         // first line when it is not a card
  std::map<std::string, double> parameters;  // final .param table
  std::vector<std::string> device_names;     // in card order
  // Parser-side lint findings (OXA007 suspicious unit suffixes), already
  // filtered through the netlist's `.nolint` directives.
  analyze::DiagnosticReport lint;
  // Codes collected from `.nolint CODE...` directives; forward to
  // analyze::AnalyzerOptions::suppress when analyzing the parsed circuit.
  std::vector<std::string> suppressed;
};

// Parses the netlist text and builds the circuit (not yet finalized, so
// callers may add probes/devices programmatically before analysis).
// Throws NetlistError (line number + OXP0xx code) on malformed input:
//   OXP001  unknown device card
//   OXP002  unknown directive
//   OXP003  malformed card (missing nodes/tokens, unbalanced parentheses,
//           wrong waveform arity)
//   OXP004  bad value literal or rejected device parameter
//   OXP005  unknown waveform or device model
//   OXP006  unresolved reference (F/H controlling source)
ParsedNetlist parse_netlist(const std::string& text);

// Parses one numeric value with SI suffix ("10k", "1p", "2.5meg", "1e-9") or
// a brace expression ("{2*vdd+1k}") against the given parameter table.
double parse_value(const std::string& token,
                   const std::map<std::string, double>& parameters = {});

}  // namespace oxmlc::spice
