#include "spice/circuit.hpp"

#include "util/error.hpp"

namespace oxmlc::spice {

namespace {
bool is_ground_name(const std::string& name) {
  return name == "0" || name == "gnd" || name == "GND";
}
const std::string kGroundName = "0";
}  // namespace

int Circuit::node(const std::string& name) {
  if (is_ground_name(name)) return kGround;
  const auto it = node_ids_.find(name);
  if (it != node_ids_.end()) return it->second;
  ensure_not_finalized();
  const int id = static_cast<int>(node_names_.size());
  node_ids_.emplace(name, id);
  node_names_.push_back(name);
  return id;
}

int Circuit::node_index(const std::string& name) const {
  if (is_ground_name(name)) return kGround;
  const auto it = node_ids_.find(name);
  OXMLC_CHECK(it != node_ids_.end(), "unknown node: " + name);
  return it->second;
}

bool Circuit::has_node(const std::string& name) const {
  return is_ground_name(name) || node_ids_.count(name) > 0;
}

void Circuit::finalize() {
  if (finalized_) return;
  std::size_t next_branch = node_names_.size();
  std::vector<int> indices;
  for (auto& device : devices_) {
    const std::size_t count = device->branch_count();
    indices.clear();
    for (std::size_t i = 0; i < count; ++i) {
      indices.push_back(static_cast<int>(next_branch++));
    }
    device->assign_branches(indices);
  }
  branch_total_ = next_branch - node_names_.size();
  finalized_ = true;
}

std::size_t Circuit::unknown_count() const {
  OXMLC_CHECK(finalized_, "circuit must be finalized before analysis");
  return node_names_.size() + branch_total_;
}

Device* Circuit::find_device(const std::string& name) {
  for (auto& device : devices_) {
    if (device->name() == name) return device.get();
  }
  return nullptr;
}

const std::string& Circuit::node_name(int idx) const {
  if (idx < 0) return kGroundName;
  OXMLC_CHECK(static_cast<std::size_t>(idx) < node_names_.size(), "node index out of range");
  return node_names_[static_cast<std::size_t>(idx)];
}

void Circuit::ensure_not_finalized() const {
  OXMLC_CHECK(!finalized_, "circuit is finalized; no further edits allowed");
}

}  // namespace oxmlc::spice
