// Circuit playground: using the oxmlc SPICE substrate directly as a general
// analog simulator — the library is a full MNA engine (DC, transient, event
// detection), not only an RRAM harness.
//
// Builds a programmable delay element: a CMOS inverter drives a capacitor
// through an OxRAM cell, and a transient *event* timestamps the moment the
// load crosses the logic threshold. The delay is set by the cell's programmed
// resistance — a 4-bit digitally-trimmed analog delay line, and a minimal
// demonstration of how the MOSFET model, the OxRAM device, and the event
// engine compose.
#include <iostream>
#include <memory>
#include <vector>

#include "devices/mosfet.hpp"
#include "devices/passive.hpp"
#include "devices/sources.hpp"
#include "mlc/levels.hpp"
#include "oxram/device.hpp"
#include "spice/transient.hpp"
#include "util/table.hpp"

namespace {

using namespace oxmlc;

// Propagation delay from the input step to the load node reaching VDD/2,
// with the cell programmed to gap `cell_gap`.
double propagation_delay(double cell_gap) {
  spice::Circuit c;
  const int vdd = c.node("vdd");
  // Low supply: the delay line must stay below the SET threshold so the
  // signal cannot reprogram the cell (read-disturb-safe operation).
  c.add<dev::VoltageSource>("Vdd", vdd, spice::kGround, 0.9);

  // Input step (falling input -> rising output through the inverter).
  spice::PulseSpec step;
  step.v1 = 0.9;
  step.v2 = 0.0;
  step.delay = 1e-9;
  step.rise = 0.1e-9;
  step.fall = 0.1e-9;
  step.width = 1e-3;
  const int in = c.node("in");
  c.add<dev::VoltageSource>("Vin", in, spice::kGround,
                            std::make_shared<spice::PulseWaveform>(step));

  // Driving inverter.
  const int drv = c.node("drv");
  c.add<dev::Mosfet>("Mp", drv, in, vdd, vdd, dev::tech130hv::pmos(4e-6, 0.5e-6));
  c.add<dev::Mosfet>("Mn", drv, in, spice::kGround, spice::kGround,
                     dev::tech130hv::nmos(2e-6, 0.5e-6));

  // The RRAM-RC delay: cell between driver and load capacitor.
  const int load = c.node("load");
  c.add<oxram::OxramDevice>("Xdelay", drv, load, oxram::OxramParams{}, cell_gap);
  c.add<dev::Capacitor>("Cload", load, spice::kGround, 100e-15);

  spice::MnaSystem system(c);
  spice::TransientOptions options;
  options.t_stop = 200e-9;
  options.dt_max = 0.2e-9;
  options.dt_initial = 1e-12;

  double crossing_time = -1.0;
  std::vector<spice::TransientEvent> events(1);
  events[0].name = "threshold";
  events[0].value = [load](double, std::span<const double> x) {
    return x[static_cast<std::size_t>(load)];
  };
  events[0].threshold = 0.45;
  events[0].direction = spice::EventDirection::kRising;
  events[0].resolution = 0.05e-9;
  events[0].on_fire = [&crossing_time](double t, std::span<const double>) {
    crossing_time = t;
  };

  spice::run_transient(system, options, {}, std::move(events));
  return crossing_time < 0.0 ? -1.0 : crossing_time - 1e-9;  // minus input delay
}

}  // namespace

int main() {
  using namespace oxmlc;

  std::cout << "RRAM-programmable delay element (oxmlc SPICE substrate)\n\n";
  const oxram::OxramParams params;

  Table t({"programmed state", "R at 0.3 V", "propagation delay"});
  struct Case {
    std::string name;
    double r_target;
  };
  std::vector<Case> cases = {{"LRS (formed)", 12.7e3}};
  // Ascending resistance: every 5th QLC level from shallow to deep.
  const auto& table = mlc::paper_table2();
  for (auto it = table.rbegin(); it != table.rend(); ++it) {
    if (it->value % 5 == 0) {
      cases.push_back({"QLC level " + std::to_string(it->value), it->r_hrs});
    }
  }

  double previous_delay = 0.0;
  bool monotone = true;
  for (const auto& cs : cases) {
    const double gap = oxram::gap_for_resistance(params, 0.3, cs.r_target);
    const double delay = propagation_delay(gap);
    monotone = monotone && delay > previous_delay;
    previous_delay = delay;
    t.add_row({cs.name, format_si(oxram::resistance_at(params, 0.3, gap), "Ohm", 3),
               delay > 0.0 ? format_si(delay, "s", 3) : "> simulation window"});
  }
  t.print(std::cout);

  std::cout << "\ndelay monotone in programmed resistance: " << std::boolalpha << monotone
            << "\nEach QLC state selects a distinct delay — 16 trim codes from\n"
               "one cell, written with a single terminated RESET each. The\n"
               "crossing times above were captured by the transient engine's\n"
               "event detector (the same machinery that implements the write\n"
               "termination stop pulse).\n";
  return monotone ? 0 : 1;
}
