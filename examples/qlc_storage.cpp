// QLC storage demo: store an arbitrary byte buffer in an OxRAM array at
// 4 bits/cell (two cells per byte), read it back, and report the error rate
// and the density/energy accounting that motivates the paper.
//
// This is the "density enhancement" use case: the same 16x32 array stores 4x
// the data of an SLC array, with programming handled by one terminated RESET
// per cell.
#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "array/fast_array.hpp"
#include "mlc/program.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main() {
  using namespace oxmlc;

  const std::string message =
      "oxmlc: quad-level-cell RRAM storage via RESET write termination. "
      "16 HRS states, no program-and-verify, one pulse per cell. "
      "Reproduction of Aziza et al., DATE 2021.";
  std::cout << "payload: " << message.size() << " bytes ("
            << message.size() * 2 << " QLC cells at 4 bits/cell)\n\n";

  // Array sized for the payload: two cells per byte.
  const std::size_t cells_needed = message.size() * 2;
  const std::size_t cols = 32;
  const std::size_t rows = (cells_needed + cols - 1) / cols;

  array::FastArray memory(rows, cols, oxram::OxramParams{}, oxram::OxramVariability{},
                          oxram::StackConfig{}, /*seed=*/2026);
  memory.form_all();

  const mlc::QlcConfig config = mlc::QlcConfig::paper_default(
      mlc::build_calibration_curve(oxram::OxramParams{}, oxram::StackConfig{},
                                   mlc::QlcConfig::paper_default(), mlc::kPaperIrefMin,
                                   mlc::kPaperIrefMax, 17));
  const mlc::QlcProgrammer programmer(config);

  // --- write ---
  RunningStats write_energy, write_latency;
  std::size_t cell_index = 0;
  auto write_nibble = [&](std::size_t nibble) {
    const std::size_t r = cell_index / cols;
    const std::size_t c = cell_index % cols;
    const auto outcome =
        programmer.program(memory.at(r, c), nibble, memory.rng_at(r, c));
    write_energy.add(outcome.energy + outcome.set_energy);
    write_latency.add(outcome.latency);
    ++cell_index;
  };
  for (unsigned char byte : message) {
    write_nibble(byte >> 4);
    write_nibble(byte & 0xF);
  }

  // --- read back ---
  Rng read_rng(1);
  cell_index = 0;
  std::string recovered;
  std::size_t nibble_errors = 0;
  auto read_nibble = [&]() {
    const std::size_t r = cell_index / cols;
    const std::size_t c = cell_index % cols;
    ++cell_index;
    return programmer.read_level(memory.at(r, c), read_rng);
  };
  for (unsigned char byte : message) {
    const std::size_t high = read_nibble();
    const std::size_t low = read_nibble();
    const auto reconstructed = static_cast<unsigned char>((high << 4) | low);
    nibble_errors += (high != static_cast<std::size_t>(byte >> 4));
    nibble_errors += (low != static_cast<std::size_t>(byte & 0xF));
    recovered.push_back(static_cast<char>(reconstructed));
  }

  std::cout << "recovered: \"" << recovered.substr(0, 60) << "...\"\n\n";

  Table t({"metric", "value"});
  t.add_row({"cells used", std::to_string(cells_needed)});
  t.add_row({"nibble errors", std::to_string(nibble_errors) + " / " +
                                  std::to_string(cells_needed)});
  t.add_row({"bits per cell", "4 (vs 1 for SLC: 4x density)"});
  t.add_row({"mean write energy/cell", format_si(write_energy.mean(), "J", 3)});
  t.add_row({"worst write energy/cell", format_si(write_energy.max(), "J", 3)});
  t.add_row({"mean RST latency", format_si(write_latency.mean(), "s", 3)});
  t.add_row({"worst RST latency", format_si(write_latency.max(), "s", 3)});
  t.add_row({"payload intact", recovered == message ? "yes" : "NO"});
  t.print(std::cout);

  return recovered == message ? 0 : 1;
}
