// Retention study: how long does a freshly programmed QLC page stay
// readable, and how much of the post-program relaxation loss does a
// relaxation-aware verify (wait tau_relax, re-sense, re-terminate the tail)
// buy back?
//
// Runs the Monte-Carlo drift sweep of mlc/retention.hpp twice from the same
// seed — verify-off and verify-on — and prints the worst-case inter-level
// window and raw decode BER at each observation decade, plus the recovered
// fraction of the drift-lost window (the subsystem's acceptance metric).
//
//   ./retention_study [trials-per-level] [bits]
#include <cstdlib>
#include <iostream>

#include "mlc/retention.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace oxmlc;

  std::size_t trials = 24;
  std::size_t bits = 4;
  if (argc > 1) trials = static_cast<std::size_t>(std::strtoul(argv[1], nullptr, 10));
  if (argc > 2) bits = static_cast<std::size_t>(std::strtoul(argv[2], nullptr, 10));

  std::cout << "retention sweep: " << bits << " bits/cell, " << trials
            << " trials/level, decade ladder 1 ms .. 10^7 s\n\n";

  mlc::RetentionConfig config = mlc::RetentionConfig::paper_default(bits, trials);
  config.verify_max_passes = 3;
  const mlc::RetentionComparison comparison = mlc::run_retention_comparison(config);
  const mlc::RetentionReport& off = comparison.verify_off;
  const mlc::RetentionReport& on = comparison.verify_on;

  std::cout << "as-programmed worst-case window: "
            << format_scaled(off.initial_margins.worst_case_margin, 1e3, 3) << " kOhm ("
            << format_scaled(off.initial_ber.ber * 100.0, 1.0, 3) << " % raw BER)\n\n";

  Table t({"t after program", "window off (kOhm)", "BER off (%)", "window on (kOhm)",
           "BER on (%)"});
  for (std::size_t k = 0; k < off.points.size(); ++k) {
    t.add_row({format_si(off.points[k].t, "s", 3),
               format_scaled(off.points[k].margins.worst_case_margin, 1e3, 3),
               format_scaled(off.points[k].ber.ber * 100.0, 1.0, 3),
               format_scaled(on.points[k].margins.worst_case_margin, 1e3, 3),
               format_scaled(on.points[k].ber.ber * 100.0, 1.0, 3)});
  }
  t.print(std::cout);

  std::cout << "\nverify: " << on.verify_reprogrammed << " cells re-terminated, "
            << on.verify_unrecovered << " still out of band after "
            << on.verify_max_passes << " passes\n";
  // Quote the recovery where the fast relaxation dominates (about 1 s): the
  // slow retention component is a per-cell activation no verify can filter,
  // so the late decades converge toward the unverified branch again.
  for (std::size_t k = 0; k < off.points.size(); ++k) {
    if (off.points[k].t > 1.0 + 1e-12) break;
    std::cout << "recovered fraction of lost window at " << format_si(off.points[k].t, "s", 3)
              << ": " << format_scaled(mlc::recovered_window_fraction(comparison, k), 1.0, 3)
              << "\n";
  }
  return 0;
}
