// In-memory computing demo: the paper motivates low read currents with
// "neural network applications where synaptic weights are constantly and
// simultaneously read during inference" (§5.1).
//
// This example stores a small fully-connected layer's weights as QLC
// conductances (4-bit quantization onto the 16 HRS levels) and performs the
// analog matrix-vector multiply the way a crossbar does it in practice:
//  - inputs are pulse-width coded (every row reads at the fixed VREAD = 0.3 V
//    for a time proportional to the activation), which sidesteps the cell's
//    sinh I-V nonlinearity, and
//  - the level -> weight mapping is calibrated against the allocation's
//    actual read conductances (ISO-dI spacing is only approximately linear
//    in conductance).
// The column charge is compared against the float reference, and the read
// current budget shows the HRS-domain energy argument.
#include <cmath>
#include <iostream>
#include <vector>

#include "array/fast_array.hpp"
#include "mlc/program.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main() {
  using namespace oxmlc;

  constexpr std::size_t kInputs = 16;
  constexpr std::size_t kOutputs = 8;
  std::cout << "analog " << kInputs << "x" << kOutputs
            << " synaptic layer on QLC OxRAM conductances\n\n";

  const mlc::QlcConfig config = mlc::QlcConfig::paper_default(
      mlc::build_calibration_curve(oxram::OxramParams{}, oxram::StackConfig{},
                                   mlc::QlcConfig::paper_default(), mlc::kPaperIrefMin,
                                   mlc::kPaperIrefMax, 17));
  const mlc::QlcProgrammer programmer(config);

  // Calibrated weight of each level: normalized nominal read conductance.
  std::vector<double> level_weight(16);
  {
    const double g_lo = 1.0 / config.allocation.levels[15].r_nominal;
    const double g_hi = 1.0 / config.allocation.levels[0].r_nominal;
    for (std::size_t v = 0; v < 16; ++v) {
      level_weight[v] =
          (1.0 / config.allocation.levels[v].r_nominal - g_lo) / (g_hi - g_lo);
    }
  }
  auto quantize = [&](double w) {
    std::size_t best = 0;
    for (std::size_t v = 1; v < 16; ++v) {
      if (std::fabs(level_weight[v] - w) < std::fabs(level_weight[best] - w)) best = v;
    }
    return best;
  };

  // Random non-negative weights (differential pairs would handle signs).
  Rng rng(99);
  std::vector<std::vector<double>> weights(kInputs, std::vector<double>(kOutputs));
  for (auto& row : weights) {
    for (double& w : row) w = rng.uniform();
  }

  // Program the synapse array.
  array::FastArray synapses(kInputs, kOutputs, oxram::OxramParams{},
                            oxram::OxramVariability{}, oxram::StackConfig{}, 7);
  synapses.form_all();
  for (std::size_t i = 0; i < kInputs; ++i) {
    for (std::size_t o = 0; o < kOutputs; ++o) {
      programmer.program(synapses.at(i, o), quantize(weights[i][o]),
                         synapses.rng_at(i, o));
    }
  }

  // One inference with pulse-width-coded activations in [0, 1].
  std::vector<double> activation(kInputs);
  for (double& a : activation) a = rng.uniform();

  const double g_lo = 1.0 / config.allocation.levels[15].r_nominal;
  const double g_hi = 1.0 / config.allocation.levels[0].r_nominal;

  RunningStats rel_error;
  Table t({"output", "analog MAC", "float reference", "rel. error"});
  double peak_column_current = 0.0;
  for (std::size_t o = 0; o < kOutputs; ++o) {
    // Column charge per unit full-scale pulse: Q = sum a_i * I_i(0.3 V).
    double charge = 0.0;
    double reference = 0.0;
    double column_current = 0.0;
    for (std::size_t i = 0; i < kInputs; ++i) {
      const auto read = synapses.at(i, o).read(0.3);
      charge += activation[i] * read.current;
      column_current += read.current;
      reference += activation[i] * weights[i][o];
    }
    peak_column_current = std::max(peak_column_current, column_current);
    // Convert charge back to weight units (subtract the g_lo baseline).
    double baseline = 0.0;
    for (double a : activation) baseline += a;
    const double mac = (charge / 0.3 - baseline * g_lo) / (g_hi - g_lo);
    const double err = std::fabs(mac - reference) / std::max(reference, 1e-9);
    rel_error.add(err);
    t.add_row({std::to_string(o), format_scaled(mac, 1.0, 4),
               format_scaled(reference, 1.0, 4),
               format_scaled(100.0 * err, 1.0, 2) + " %"});
  }
  t.print(std::cout);

  std::cout << "\n  mean relative MAC error : "
            << format_scaled(100.0 * rel_error.mean(), 1.0, 2)
            << " %  (4-bit quantization + programming spread + read-stack drops)\n"
            << "  peak column read current: " << format_si(peak_column_current, "A", 3)
            << "  (" << kInputs << " cells read simultaneously)\n"
            << "  per-cell read current   : "
            << format_si(peak_column_current / kInputs, "A", 3)
            << "  (HRS-domain storage keeps this in the low-uA range — the\n"
               "   paper's energy argument for MLC in HRS rather than LRS)\n";
  return rel_error.mean() < 0.1 ? 0 : 1;
}
