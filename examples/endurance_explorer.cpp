// Endurance explorer: cycles one QLC word through random levels with the
// full reliability stack in the loop — per-event relaxation and log-time
// retention drift (oxram/drift.hpp), read disturb on every sense, endurance
// window compression past the wear onset, a relaxation-aware program verify
// after every write, and a scrub pass repairing each dwell's drift.
//
// Each cycle: write a random word (verify-on), dwell, re-read (this is where
// drift shows up as decode errors), scrub. The run reports decode fidelity
// before/after scrub per epoch and the switching-window compression that the
// accumulated cycles cost. The wear onset is pulled down from the technology
// value so the effect is visible within an example-sized run.
//
//   ./endurance_explorer [cycles] [dwell-seconds]
#include <cstdlib>
#include <iostream>
#include <vector>

#include "mlc/controller.hpp"
#include "reliability/engine.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace oxmlc;

  std::size_t cycles = 120;
  double dwell = 1e5;  // s between write and re-read: ~1 day of retention
  if (argc > 1) cycles = static_cast<std::size_t>(std::strtoul(argv[1], nullptr, 10));
  if (argc > 2) dwell = std::strtod(argv[2], nullptr);
  std::cout << "cycling one 8-cell QLC word through " << cycles
            << " random writes, dwell " << format_si(dwell, "s", 3)
            << " per cycle, verify + scrub on\n\n";

  const mlc::QlcConfig config = mlc::QlcConfig::paper_default(
      mlc::build_calibration_curve(oxram::OxramParams{}, oxram::StackConfig{},
                                   mlc::QlcConfig::paper_default(), mlc::kPaperIrefMin,
                                   mlc::kPaperIrefMax, 17));
  const mlc::QlcProgrammer programmer(config);

  array::FastArray word(1, 8, oxram::OxramParams{}, oxram::OxramVariability{},
                        oxram::StackConfig{}, 0xE77D);
  mlc::MemoryController controller(word, programmer);

  reliability::ReliabilityConfig rel;
  rel.endurance.onset_cycles = 20;     // technology value is ~1e9 writes; pulled
  rel.endurance.loss_per_decade = 0.08;  // down so an example-sized run shows wear
  reliability::ReliabilityEngine engine(word, rel);
  mlc::VerifyPolicy verify;
  verify.enabled = true;
  controller.attach_reliability(&engine, verify);
  controller.form();

  const double fresh_window =
      word.at(0, 0).params().g_max - word.at(0, 0).params().g_min;

  Rng rng(0xE77D);
  RunningStats energy, latency;
  std::size_t verify_reprogrammed = 0;
  std::size_t epoch_errors_raw = 0;    // decode errors at re-read, before scrub
  std::size_t epoch_errors_fixed = 0;  // still wrong after the scrub pass
  std::size_t epoch_scrubbed = 0;

  const std::size_t epochs = 6;
  const std::size_t epoch_len = (cycles + epochs - 1) / epochs;
  Table report({"cycles", "raw errors", "scrubbed cells", "errors after scrub",
                "window loss (%)"});

  for (std::size_t cycle = 1; cycle <= cycles; ++cycle) {
    std::vector<std::size_t> levels(word.cols());
    for (std::size_t& level : levels) level = rng.uniform_index(16);
    const mlc::WordWriteStats stats = controller.write_word_levels(0, levels);
    energy.add(stats.energy);
    latency.add(stats.latency);
    verify_reprogrammed += stats.reprogrammed;

    engine.advance(dwell);
    const std::vector<std::size_t> read = controller.read_word_levels(0);
    for (std::size_t col = 0; col < word.cols(); ++col) {
      epoch_errors_raw += read[col] != levels[col];
    }

    const mlc::ScrubStats scrub = controller.scrub_word(0);
    epoch_scrubbed += scrub.cells_scrubbed;
    const std::vector<std::size_t> after = controller.read_word_levels(0);
    for (std::size_t col = 0; col < word.cols(); ++col) {
      epoch_errors_fixed += after[col] != levels[col];
    }

    if (cycle % epoch_len == 0 || cycle == cycles) {
      const double window =
          word.at(0, 0).params().g_max - word.at(0, 0).params().g_min;
      report.add_row({std::to_string(cycle), std::to_string(epoch_errors_raw),
                      std::to_string(epoch_scrubbed), std::to_string(epoch_errors_fixed),
                      format_scaled(100.0 * (1.0 - window / fresh_window), 1.0, 1)});
      epoch_errors_raw = epoch_errors_fixed = epoch_scrubbed = 0;
    }
  }
  report.print(std::cout);

  Table summary({"metric", "value"});
  summary.add_row({"write cycles", std::to_string(cycles)});
  summary.add_row({"verify re-programs", std::to_string(verify_reprogrammed)});
  summary.add_row({"mean energy / write", format_si(energy.mean(), "J", 3)});
  summary.add_row({"mean write latency (incl. verify)", format_si(latency.mean(), "s", 3)});
  summary.add_row({"reads seen by cell (0,0)", std::to_string(engine.reads(0, 0))});
  summary.add_row({"cycles seen by cell (0,0)", std::to_string(engine.cycles(0, 0))});
  std::cout << "\n";
  summary.print(std::cout);

  std::cout << "\nNote: raw errors are what a dwell of " << format_si(dwell, "s", 3)
            << " costs an unscrubbed page; the scrub column is the refresh work\n"
               "that keeps the page readable. Window loss comes from the endurance\n"
               "model (onset pulled down to "
            << rel.endurance.onset_cycles << " cycles for visibility).\n";
  return 0;
}
