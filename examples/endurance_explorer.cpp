// Endurance explorer: cycles one cell through random QLC levels and tracks
// decode fidelity, energy and latency over the cycle count — exercising the
// paper's §4.4.2 claim that the terminated write is "agnostic about
// resistance distribution": the final state depends only on the cell current,
// so repeated cycling does not degrade level placement in this model.
#include <iostream>
#include <vector>

#include "mlc/program.hpp"
#include "oxram/fast_cell.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace oxmlc;

  std::size_t cycles = 2000;
  if (argc > 1) cycles = static_cast<std::size_t>(std::strtoul(argv[1], nullptr, 10));
  std::cout << "cycling one QLC cell through " << cycles << " random writes\n\n";

  const mlc::QlcConfig config = mlc::QlcConfig::paper_default(
      mlc::build_calibration_curve(oxram::OxramParams{}, oxram::StackConfig{},
                                   mlc::QlcConfig::paper_default(), mlc::kPaperIrefMin,
                                   mlc::kPaperIrefMax, 17));
  const mlc::QlcProgrammer programmer(config);

  Rng rng(0xE77D);
  const auto device = sample_device(oxram::OxramParams{}, oxram::OxramVariability{}, rng);
  oxram::FastCell cell(device, oxram::StackConfig{}, device.g_virgin, /*virgin=*/true);
  cell.apply_forming(oxram::FormingOperation{});

  RunningStats energy, latency;
  std::vector<RunningStats> per_level_r(16);
  std::size_t decode_errors = 0;
  std::size_t unterminated = 0;

  for (std::size_t cycle = 0; cycle < cycles; ++cycle) {
    const std::size_t level = rng.uniform_index(16);
    const mlc::ProgramOutcome outcome = programmer.program(cell, level, rng);
    energy.add(outcome.energy + outcome.set_energy);
    latency.add(outcome.latency);
    per_level_r[level].add(outcome.resistance);
    unterminated += !outcome.terminated;
    decode_errors += programmer.read_level(cell, rng) != level;
  }

  Table t({"metric", "value"});
  t.add_row({"write cycles", std::to_string(cycles)});
  t.add_row({"decode errors", std::to_string(decode_errors)});
  t.add_row({"unterminated writes", std::to_string(unterminated)});
  t.add_row({"mean energy / write", format_si(energy.mean(), "J", 3)});
  t.add_row({"worst energy / write", format_si(energy.max(), "J", 3)});
  t.add_row({"mean RST latency", format_si(latency.mean(), "s", 3)});
  t.print(std::cout);

  std::cout << "\nper-level placement stability over the whole run:\n";
  Table stability({"level", "writes", "mean R (kOhm)", "sigma (kOhm)", "sigma/mean"});
  for (std::size_t v = 0; v < 16; ++v) {
    if (per_level_r[v].count() < 2) continue;
    stability.add_row(
        {config.allocation.pattern(v), std::to_string(per_level_r[v].count()),
         format_scaled(per_level_r[v].mean(), 1e3, 2),
         format_scaled(per_level_r[v].stddev(), 1e3, 3),
         format_scaled(100.0 * per_level_r[v].stddev() / per_level_r[v].mean(), 1.0, 2) +
             " %"});
  }
  stability.print(std::cout);

  std::cout << "\nNote: the compact model carries no wear-out physics (the paper\n"
               "cites a 1e9-cycle endurance for this technology [19] rather than\n"
               "evaluating it); what this run demonstrates is placement stability\n"
               "under C2C stochasticity across arbitrarily ordered level targets.\n";
  return decode_errors == 0 ? 0 : 1;
}
