// ECC-protected QLC storage: the full production stack — Gray-coded levels,
// SECDED(72,64) codewords, QLC cells programmed by the write-termination
// scheme — surviving an injected worst-case analog fault.
//
// The demo stores 64-bit payloads as 18-cell codewords (16 data nibbles + 2
// check nibbles), then deliberately degrades one read with a huge sense-amp
// offset so a cell decodes one level off, and shows SECDED returning the
// exact payload anyway.
#include <array>
#include <cstdint>
#include <iostream>
#include <vector>

#include "array/fast_array.hpp"
#include "mlc/ecc.hpp"
#include "mlc/program.hpp"
#include "util/table.hpp"

namespace {

using namespace oxmlc;

// Levels of one codeword: 16 data nibbles + 2 check nibbles, Gray-mapped.
std::array<std::size_t, 18> codeword_levels(const mlc::SecdedWord& word) {
  std::array<std::size_t, 18> levels{};
  for (unsigned n = 0; n < 16; ++n) {
    levels[n] = static_cast<std::size_t>(
        mlc::gray_decode((word.data >> (4 * n)) & 0xF));
  }
  levels[16] = static_cast<std::size_t>(mlc::gray_decode(word.check & 0xF));
  levels[17] = static_cast<std::size_t>(mlc::gray_decode((word.check >> 4) & 0xF));
  return levels;
}

mlc::SecdedWord codeword_from_levels(const std::array<std::size_t, 18>& levels) {
  mlc::SecdedWord word;
  for (unsigned n = 0; n < 16; ++n) {
    word.data |= mlc::gray_encode(levels[n]) << (4 * n);
  }
  word.check = static_cast<std::uint8_t>(mlc::gray_encode(levels[16]) |
                                         (mlc::gray_encode(levels[17]) << 4));
  return word;
}

}  // namespace

int main() {
  using namespace oxmlc;

  std::cout << "SECDED-protected QLC storage (18 cells per 64-bit payload)\n\n";

  const mlc::QlcConfig config = mlc::QlcConfig::paper_default(
      mlc::build_calibration_curve(oxram::OxramParams{}, oxram::StackConfig{},
                                   mlc::QlcConfig::paper_default(), mlc::kPaperIrefMin,
                                   mlc::kPaperIrefMax, 17));
  const mlc::QlcProgrammer programmer(config);

  const std::vector<std::uint64_t> payloads = {
      0xDEADBEEFCAFEF00Dull, 0x0123456789ABCDEFull, 0xFFFFFFFF00000000ull};

  array::FastArray memory(payloads.size(), 18, oxram::OxramParams{},
                          oxram::OxramVariability{}, oxram::StackConfig{}, 0xECC);
  memory.form_all();

  // --- write codewords ---
  for (std::size_t row = 0; row < payloads.size(); ++row) {
    const auto levels = codeword_levels(mlc::secded_encode(payloads[row]));
    for (std::size_t col = 0; col < 18; ++col) {
      programmer.program(memory.at(row, col), levels[col], memory.rng_at(row, col));
    }
  }

  // --- read back; on row 1, sabotage the read of one cell ---
  Rng rng(5);
  Table t({"row", "fault injected", "raw payload ok", "ECC status", "payload after ECC"});
  bool all_ok = true;
  for (std::size_t row = 0; row < payloads.size(); ++row) {
    std::array<std::size_t, 18> levels{};
    for (std::size_t col = 0; col < 18; ++col) {
      levels[col] = programmer.read_level(memory.at(row, col), rng);
    }
    const bool inject = row == 1;
    if (inject) {
      // Worst-case single-cell analog fault: one level slip.
      levels[7] = levels[7] < 15 ? levels[7] + 1 : levels[7] - 1;
    }
    const mlc::SecdedWord read = codeword_from_levels(levels);
    const mlc::EccDecodeResult decoded = mlc::secded_decode(read);
    const bool raw_ok = read.data == mlc::secded_encode(payloads[row]).data;
    const bool final_ok = decoded.data == payloads[row];
    all_ok = all_ok && final_ok;

    const char* status =
        decoded.status == mlc::EccStatus::kClean
            ? "clean"
            : decoded.status == mlc::EccStatus::kCorrectedSingle ? "corrected single"
                                                                 : "DOUBLE (uncorrectable)";
    t.add_row({std::to_string(row), inject ? "1-level slip in cell 7" : "none",
               raw_ok ? "yes" : "NO", status, final_ok ? "intact" : "CORRUPT"});
  }
  t.print(std::cout);

  std::cout << "\nGray mapping turns a one-level slip into a one-bit flip;\n"
               "SECDED(72,64) repairs it — the layer that converts the QLC\n"
               "array's residual analog error rate into delivered-zero errors.\n";
  return all_ok ? 0 : 1;
}
