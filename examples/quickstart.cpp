// Quickstart: form one 1T-1R OxRAM cell, program a 4-bit value with the
// RESET write-termination scheme, and read it back.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <iostream>

#include "mlc/program.hpp"
#include "oxram/fast_cell.hpp"
#include "util/table.hpp"

int main() {
  using namespace oxmlc;

  std::cout << "oxmlc quickstart: QLC (4 bits/cell) via RESET write termination\n\n";

  // 1. The device and its electrical environment (paper defaults: 130 nm HV
  //    CMOS access transistor, termination-mirror bit-line sink).
  const oxram::OxramParams device;      // calibrated HfO2 OxRAM compact model
  const oxram::StackConfig stack;       // 1T-1R write/read stack

  // 2. One-time FORMING (Table 1: BL = 3.3 V).
  oxram::FastCell cell(device, stack, device.g_virgin, /*virgin=*/true);
  cell.apply_forming(oxram::FormingOperation{});
  std::cout << "after FORMING: R = " << format_si(cell.read().r_cell, "Ohm", 3) << "\n";

  // 3. A QLC programmer: ISO-dI allocation over the paper's 6-36 uA window,
  //    read references derived from the nominal calibration curve.
  const mlc::QlcConfig config = mlc::QlcConfig::paper_default(
      mlc::build_calibration_curve(device, stack, mlc::QlcConfig::paper_default(),
                                   mlc::kPaperIrefMin, mlc::kPaperIrefMax, 17));
  const mlc::QlcProgrammer programmer(config);

  // 4. Program the value 13 ('1101'): one SET, one terminated RESET — no
  //    read-verify iteration anywhere.
  Rng rng(42);
  const std::size_t value = 13;
  const mlc::ProgramOutcome outcome = programmer.program(cell, value, rng);

  std::cout << "programmed '" << config.allocation.pattern(value) << "' (value " << value
            << "):\n"
            << "  termination reference : "
            << format_si(config.allocation.levels[value].iref, "A", 3) << "\n"
            << "  write terminated      : " << (outcome.terminated ? "yes" : "no") << "\n"
            << "  RST latency           : " << format_si(outcome.latency, "s", 3) << "\n"
            << "  RST energy            : " << format_si(outcome.energy, "J", 3) << "\n"
            << "  programmed resistance : " << format_si(outcome.resistance, "Ohm", 4)
            << "\n";

  // 5. Read back through the 15-reference sense bank.
  const std::size_t read_back = programmer.read_level(cell, rng);
  std::cout << "read back value         : " << read_back << " ('"
            << config.allocation.pattern(read_back) << "')  "
            << (read_back == value ? "[OK]" : "[MISMATCH]") << "\n";

  // 6. Rewrite with a different value to show in-place update.
  programmer.program(cell, 2, rng);
  std::cout << "rewritten to 2, read    : " << programmer.read_level(cell, rng) << "\n";
  return read_back == value ? 0 : 1;
}
